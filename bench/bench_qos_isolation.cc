// Noisy-neighbor isolation benchmark for the multi-tenant QoS subsystem
// (src/qos/): a weight-3 "victim" tenant offering a fixed ~3 Gbps of
// 32 KiB RPCs shares one Pony engine and one 10 Gbps uplink with a
// weight-1 "aggressor" tenant offering 4x the link across 8 remote
// engines. Three configurations:
//
//   qos_off               flat round-robin everywhere (the pre-QoS path);
//                         the victim collapses toward a 1/9 flow share
//   qos_weights           DRR at the engine + WFQ at the NIC (3:1)
//   qos_weights_admission qos_weights plus a client-side token bucket
//                         throttling the aggressor at the app boundary
//
// Reports victim/aggressor goodput, the victim's p50/p99 latency, the
// admission-throttle count, and the per-tenant telemetry dashboard.
//
// Usage:
//   bench_qos_isolation [--smoke] [--json PATH] [--trace PATH]
// --smoke shrinks the windows for CI and double-runs one configuration
// to assert bit-identical determinism; --json writes machine-readable
// results for tools/bench_trajectory.py (BENCH_qos_isolation.json),
// whose gate tracks the isolation ratio; --trace re-runs the admission
// configuration under the flight recorder and writes a Chrome-trace JSON
// (tools/trace_report.py rolls up the per-tenant qos_admission_block /
// unblock instants it contains).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/qos/tenant.h"
#include "src/stats/telemetry.h"
#include "src/stats/trace.h"

namespace snap {
namespace {

constexpr int kAggressorServers = 8;
constexpr int64_t kRequestBytes = 32 * 1024;
constexpr double kLinkGbps = 10.0;
constexpr double kVictimOfferedGbps = 3.0;
// 4x overload, offered by the aggressor against the 10 Gbps uplink.
constexpr double kAggressorOfferedGbps = 4.0 * kLinkGbps;

struct ScenarioConfig {
  bool qos_weights = false;
  // Aggressor client-side admission cap (bytes/sec); 0 = unlimited. Only
  // meaningful with qos_weights (tenants must be tagged to be throttled).
  double aggressor_admission_bytes_per_sec = 0;
  uint64_t seed = 7;
  SimDuration warmup = 20 * kMsec;
  SimDuration window = 100 * kMsec;
  bool dump_dashboard = false;
  TraceRecorder* tracer = nullptr;
};

struct Outcome {
  double victim_gbps = 0;
  double aggressor_gbps = 0;
  int64_t victim_p50_ns = 0;
  int64_t victim_p99_ns = 0;
  int64_t victim_rpcs = 0;
  int64_t aggressor_rpcs = 0;
  int64_t admission_throttled = 0;

  double victim_share_of_offered() const {
    return victim_gbps / kVictimOfferedGbps;
  }
};

Outcome RunScenario(const ScenarioConfig& cfg) {
  Simulator sim(cfg.seed);
  sim.set_tracer(cfg.tracer);
  NicParams nic_params;
  nic_params.link_gbps = kLinkGbps;  // the contended resource
  Fabric fabric(&sim, nic_params);
  PonyDirectory directory;
  SimHostOptions options;
  options.group.dedicated_cores = {0, 1, 2, 3};
  SimHost a(&sim, &fabric, &directory, options);
  SimHost b(&sim, &fabric, &directory, options);

  PonyEngine* ea = a.CreatePonyEngine("ea");

  struct Server {
    PonyEngine* engine = nullptr;
    std::unique_ptr<PonyClient> sink;
    std::unique_ptr<PonyRpcServerTask> task;
  };
  std::vector<Server> servers;  // [0] = victim's, rest = aggressor's
  for (int i = 0; i <= kAggressorServers; ++i) {
    const std::string name =
        i == 0 ? "vsrv" : "asrv" + std::to_string(i - 1);
    Server s;
    s.engine = b.CreatePonyEngine(name);
    s.sink = b.CreateClient(s.engine, name + "_srv");
    s.engine->SetDefaultSink(s.sink.get());
    s.task = std::make_unique<PonyRpcServerTask>(name + "_task", b.cpu(),
                                                 s.sink.get());
    s.task->Start();
    servers.push_back(std::move(s));
  }

  std::unique_ptr<PonyClient> victim_client = a.CreateClient(ea, "victim");
  std::unique_ptr<PonyClient> aggr_client = a.CreateClient(ea, "aggr");

  qos::TenantRegistry registry;
  if (cfg.qos_weights) {
    qos::TenantSpec victim{.id = 1, .name = "victim", .weight = 3};
    qos::TenantSpec aggressor{.id = 2, .name = "aggressor", .weight = 1};
    aggressor.admission_rate_bytes_per_sec =
        cfg.aggressor_admission_bytes_per_sec;
    registry.Register(victim);
    registry.Register(aggressor);
    victim_client->SetTenant(victim);
    aggr_client->SetTenant(aggressor);
    ea->EnableQos(&registry);
    a.nic()->EnableQosTx(&registry);
  }

  PonyRpcClientTask::Options vo;
  vo.peers = {servers[0].engine->address()};
  vo.request_bytes = kRequestBytes;
  vo.response_bytes = 64;
  vo.rpcs_per_sec = kVictimOfferedGbps * 1e9 / (8.0 * kRequestBytes);
  vo.rng_seed = cfg.seed + 11;
  PonyRpcClientTask victim_task("victim_task", a.cpu(),
                                victim_client.get(), vo);

  PonyRpcClientTask::Options ao;
  for (int i = 1; i <= kAggressorServers; ++i) {
    ao.peers.push_back(servers[i].engine->address());
  }
  ao.request_bytes = kRequestBytes;
  ao.response_bytes = 64;
  ao.rpcs_per_sec = kAggressorOfferedGbps * 1e9 / (8.0 * kRequestBytes);
  ao.max_outstanding = 256;  // bound queued memory; the link stays loaded
  ao.rng_seed = cfg.seed + 23;
  PonyRpcClientTask aggr_task("aggr_task", a.cpu(), aggr_client.get(), ao);

  victim_task.Start();
  aggr_task.Start();

  sim.RunFor(cfg.warmup);
  victim_task.ResetStats();
  aggr_task.ResetStats();
  sim.RunFor(cfg.window);

  Outcome out;
  double sec = ToSec(cfg.window);
  out.victim_rpcs = victim_task.rpcs_completed();
  out.aggressor_rpcs = aggr_task.rpcs_completed();
  out.victim_gbps = static_cast<double>(out.victim_rpcs) * kRequestBytes *
                    8.0 / sec / 1e9;
  out.aggressor_gbps = static_cast<double>(out.aggressor_rpcs) *
                       kRequestBytes * 8.0 / sec / 1e9;
  out.victim_p50_ns = victim_task.latency().P50();
  out.victim_p99_ns = victim_task.latency().P99();
  out.admission_throttled = aggr_client->admission_throttled();

  if (cfg.dump_dashboard && cfg.qos_weights) {
    ea->ExportQosStats(&sim.telemetry(), "qos/tenant");
    a.nic()->ExportQosStats(&sim.telemetry(), "qos/tenant");
    std::printf("%s", sim.telemetry().DumpDashboard().c_str());
  }
  return out;
}

void PrintOutcome(const char* label, const Outcome& o) {
  std::printf(
      "  %-22s victim %6.2f Gbps (%5.1f%% of offered)  "
      "aggressor %6.2f Gbps  victim p50/p99 %7.0f/%9.0f us  throttled %lld\n",
      label, o.victim_gbps, 100.0 * o.victim_share_of_offered(),
      o.aggressor_gbps, static_cast<double>(o.victim_p50_ns) / 1e3,
      static_cast<double>(o.victim_p99_ns) / 1e3,
      static_cast<long long>(o.admission_throttled));
}

void JsonOutcome(FILE* f, const char* name, const Outcome& o, bool last) {
  std::fprintf(f,
               "    \"%s\": {\n"
               "      \"victim_gbps\": %.4f,\n"
               "      \"aggressor_gbps\": %.4f,\n"
               "      \"victim_share_of_offered\": %.4f,\n"
               "      \"victim_p50_us\": %.3f,\n"
               "      \"victim_p99_us\": %.3f,\n"
               "      \"victim_rpcs\": %lld,\n"
               "      \"aggressor_rpcs\": %lld,\n"
               "      \"admission_throttled\": %lld\n"
               "    }%s\n",
               name, o.victim_gbps, o.aggressor_gbps,
               o.victim_share_of_offered(),
               static_cast<double>(o.victim_p50_ns) / 1e3,
               static_cast<double>(o.victim_p99_ns) / 1e3,
               static_cast<long long>(o.victim_rpcs),
               static_cast<long long>(o.aggressor_rpcs),
               static_cast<long long>(o.admission_throttled),
               last ? "" : ",");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH] [--trace PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  ScenarioConfig base;
  base.warmup = smoke ? 5 * kMsec : 20 * kMsec;
  base.window = smoke ? 15 * kMsec : 100 * kMsec;

  PrintHeader(smoke ? "QoS noisy-neighbor isolation (smoke)"
                    : "QoS noisy-neighbor isolation");
  std::printf(
      "  victim: weight 3, offered %.1f Gbps | aggressor: weight 1, "
      "offered %.0f Gbps (%.0fx the %.0f Gbps uplink)\n",
      kVictimOfferedGbps, kAggressorOfferedGbps,
      kAggressorOfferedGbps / kLinkGbps, kLinkGbps);

  ScenarioConfig off = base;
  Outcome off_out = RunScenario(off);
  PrintOutcome("qos_off", off_out);

  ScenarioConfig weights = base;
  weights.qos_weights = true;
  weights.dump_dashboard = !smoke;
  Outcome weights_out = RunScenario(weights);
  PrintOutcome("qos_weights", weights_out);

  ScenarioConfig admission = weights;
  admission.dump_dashboard = false;
  // Cap the aggressor's submissions at 1.5 Gbps at the app boundary, well
  // below what scheduling alone would leave it.
  admission.aggressor_admission_bytes_per_sec = 1.5e9 / 8.0;
  Outcome admission_out = RunScenario(admission);
  PrintOutcome("qos_weights_admission", admission_out);

  const double isolation_ratio = weights_out.victim_share_of_offered();
  const double collapse_ratio = off_out.victim_share_of_offered();
  std::printf(
      "  isolation ratio (victim share of offered, qos on): %.3f\n"
      "  collapse ratio  (victim share of offered, qos off): %.3f\n",
      isolation_ratio, collapse_ratio);

  if (smoke) {
    // Same seed, same configuration: the outcome must be bit-identical.
    Outcome replay = RunScenario(weights);
    if (replay.victim_rpcs != weights_out.victim_rpcs ||
        replay.aggressor_rpcs != weights_out.aggressor_rpcs ||
        replay.victim_p99_ns != weights_out.victim_p99_ns) {
      std::fprintf(stderr, "FAIL: qos_weights replay diverged\n");
      return 1;
    }
    std::printf("  replay: bit-identical\n");
    // The smoke run doubles as a coarse acceptance gate for CI.
    if (isolation_ratio < 0.9) {
      std::fprintf(stderr, "FAIL: isolation ratio %.3f < 0.9\n",
                   isolation_ratio);
      return 1;
    }
    if (collapse_ratio > 0.7) {
      std::fprintf(stderr,
                   "FAIL: qos_off victim did not collapse (%.3f)\n",
                   collapse_ratio);
      return 1;
    }
  }

  // Dedicated traced run (never timed): repeats the admission scenario
  // under the flight recorder so the per-tenant qos_admission_block /
  // unblock instants land in a Chrome-trace JSON that
  // tools/trace_report.py can roll up (and --check can validate).
  if (!trace_path.empty()) {
    TraceRecorder tracer;
    ScenarioConfig traced = admission;
    traced.dump_dashboard = false;
    traced.tracer = &tracer;
    RunScenario(traced);
    if (!tracer.WriteJson(trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu trace events)\n", trace_path.c_str(),
                tracer.size());
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"smoke\": %s,\n"
                 "  \"link_gbps\": %.1f,\n"
                 "  \"victim_offered_gbps\": %.1f,\n"
                 "  \"aggressor_offered_gbps\": %.1f,\n"
                 "  \"isolation_ratio\": %.4f,\n"
                 "  \"collapse_ratio\": %.4f,\n"
                 "  \"benchmarks\": {\n",
                 smoke ? "true" : "false", kLinkGbps, kVictimOfferedGbps,
                 kAggressorOfferedGbps, isolation_ratio, collapse_ratio);
    JsonOutcome(f, "qos_off", off_out, false);
    JsonOutcome(f, "qos_weights", weights_out, false);
    JsonOutcome(f, "qos_weights_admission", admission_out, true);
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace snap

int main(int argc, char** argv) { return snap::Main(argc, argv); }
