// Chaos goodput sweep: how Pony Express goodput degrades as injected
// fault rates rise. Each row runs the deterministic two-host echo scenario
// (seed-averaged) under one chaos setting and reports achieved goodput,
// retransmission overhead, and invariant status — reliability must hold at
// every point; only performance is allowed to degrade.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/testing/seed_sweep.h"
#include "src/util/logging.h"

namespace {

struct Row {
  std::string label;
  snap::ChaosProfile profile;
};

}  // namespace

int main() {
  using namespace snap;
  PrintHeader("Chaos goodput: echo workload vs injected fault rate");

  std::vector<Row> rows;
  {
    ChaosProfile clean;
    clean.name = "clean";
    rows.push_back({"loss 0%", clean});
  }
  for (double loss_bad : {0.2, 0.4, 0.6}) {
    ChaosProfile p;
    p.p_good_to_bad = 0.02;
    p.p_bad_to_good = 0.25;
    p.loss_bad = loss_bad;
    // Stationary bad fraction ~7.4% -> average loss ~ 0.074 * loss_bad.
    char label[32];
    std::snprintf(label, sizeof(label), "burst loss ~%.1f%%",
                  7.4 * loss_bad);
    p.name = label;
    rows.push_back({label, p});
  }
  for (double reorder : {0.05, 0.15, 0.30}) {
    ChaosProfile p;
    p.reorder_probability = reorder;
    p.reorder_span = 8;
    char label[32];
    std::snprintf(label, sizeof(label), "reorder %2.0f%% k=8",
                  reorder * 100);
    p.name = label;
    rows.push_back({label, p});
  }

  SeedSweepOptions opt;
  opt.num_seeds = 4;
  opt.check_replay = false;
  opt.num_streams = 4;
  opt.messages_per_stream = 32;
  opt.message_bytes = 4096;
  opt.send_interval = 5 * kUsec;
  SeedSweepRunner runner(opt);

  std::printf("  %-18s %13s %8s %10s %10s %6s\n", "profile",
              "goodput(Gbps)", "retx", "spurious", "held", "ok");
  for (const Row& row : rows) {
    double goodput_sum = 0;
    int64_t retx = 0;
    int64_t spurious = 0;
    int64_t held = 0;
    bool all_ok = true;
    for (int s = 0; s < opt.num_seeds; ++s) {
      SweepRunResult r = runner.RunOne(
          opt.first_seed + static_cast<uint64_t>(s), row.profile);
      all_ok = all_ok && r.ok && r.completed;
      if (r.finish_time > 0) {
        goodput_sum += static_cast<double>(r.delivered_messages) *
                       static_cast<double>(opt.message_bytes) * 8.0 /
                       static_cast<double>(r.finish_time);  // Gbps
      }
      retx += r.retransmits;
      spurious += r.spurious_retransmits;
      held += r.messages_held_for_order;
    }
    std::printf("  %-18s %13.3f %8lld %10lld %10lld %6s\n",
                row.label.c_str(), goodput_sum / opt.num_seeds,
                static_cast<long long>(retx),
                static_cast<long long>(spurious),
                static_cast<long long>(held), all_ok ? "yes" : "NO");
    SNAP_CHECK(all_ok) << "invariants must hold at every fault rate";
  }
  return 0;
}
