// Sharded variant of the Fig. 6(b) RPC rack: the same all-to-all Pony
// workload assembled over a ShardedSim + ShardedFabricGroup, hosts placed
// on shards by a pluggable Placement (round-robin by default).
// bench_sim_speed's rack-scaling leg sweeps --shards over rack sizes to
// measure how the conservative-sync engine scales, and cross-checks that
// delivered work is identical no matter how many shards (or worker
// threads, or placements) execute it.
#ifndef BENCH_SHARDED_RACK_H_
#define BENCH_SHARDED_RACK_H_

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/rpc_rack.h"
#include "src/net/shard_net.h"
#include "src/sim/placement.h"
#include "src/sim/sharded_sim.h"

namespace snap {

// A rack of identical SimHosts spread across a sharded fabric. Host ids
// stay global (the group pads every other shard's host table), so the
// workload wiring is identical to the serial Rack's no matter where each
// host is placed; `placement` (nullptr = round-robin) only chooses which
// shard simulates which host — it may change epoch/exchange counts and
// wall time, never simulated results.
class ShardedRack {
 public:
  ShardedRack(uint64_t seed, int num_hosts, const SimHostOptions& options,
              int num_shards, int num_threads,
              EventQueueKind queue_kind = kDefaultEventQueueKind,
              const NicParams& nic_params = NicParams{},
              const Placement* placement = nullptr)
      : sharded_([&] {
          ShardedSim::Options o;
          o.num_shards = num_shards;
          o.seed = seed;
          o.queue_kind = queue_kind;
          o.lookahead = nic_params.propagation_delay;
          o.num_threads = num_threads;
          return o;
        }()),
        group_(&sharded_, nic_params) {
    if (placement != nullptr) {
      SNAP_CHECK_EQ(placement->num_hosts(), num_hosts);
      SNAP_CHECK_LE(placement->num_shards, num_shards);
    }
    for (int i = 0; i < num_hosts; ++i) {
      int shard = placement != nullptr ? placement->shard(i)
                                       : i % num_shards;
      hosts_.push_back(std::make_unique<SimHost>(
          sharded_.sim(shard), group_.fabric(shard), &directory_, options));
    }
  }

  ShardedSim& sharded() { return sharded_; }
  ShardedFabricGroup& group() { return group_; }
  PonyDirectory& directory() { return directory_; }
  SimHost* host(int i) { return hosts_[i].get(); }
  int size() const { return static_cast<int>(hosts_.size()); }

  int64_t TotalEventsFired() const {
    int64_t total = 0;
    for (int s = 0; s < sharded_.num_shards(); ++s) {
      total += sharded_.sim(s)->event_queue().stats().fired;
    }
    return total;
  }

 private:
  ShardedSim sharded_;
  PonyDirectory directory_;
  ShardedFabricGroup group_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

// Extra accounting the sharded leg reports on top of RpcRackResult.
struct ShardedRackResult {
  RpcRackResult rack;
  int64_t epochs = 0;
  int64_t events_fired = 0;
  int64_t critical_path_events = 0;
  int64_t exchange_handoffs = 0;
  int64_t exchange_local_direct = 0;
  int64_t exchange_cross_shard = 0;
  int64_t exchanges = 0;  // barrier exchanges that moved packets
  // events_fired / critical_path_events: the speedup an ideal machine
  // with one core per shard would see. Wall-clock numbers sit next to
  // this in the JSON; on a single-core runner they cannot show parallel
  // speedup, the critical-path ratio is the scaling signal.
  double speedup_critical_path() const {
    return critical_path_events > 0
               ? static_cast<double>(events_fired) /
                     static_cast<double>(critical_path_events)
               : 0;
  }
};

// Workload-declared traffic hint for shard placement: the rack's offered
// load as a host-to-host weight matrix, built from the same peer rules
// the assembly below uses (bulk jobs peer cluster-locally when
// cluster_hosts > 0, probers all-to-all), so
// Placement::TrafficAware(BuildRackTrafficMatrix(config), shards) packs
// each cluster's heavy mutual traffic onto one shard. Weights are
// per-pair offered bytes up to a common scale factor — only ratios
// matter to the partitioner.
inline TrafficMatrix BuildRackTrafficMatrix(const RpcRackConfig& config) {
  TrafficMatrix traffic(config.hosts);
  for (int a = 0; a < config.hosts; ++a) {
    for (int b = a + 1; b < config.hosts; ++b) {
      // Tiny prober RPCs: 64B request + 64B response, all-to-all.
      int64_t weight = 128;
      if (config.cluster_hosts <= 0 ||
          a / config.cluster_hosts == b / config.cluster_hosts) {
        // Bulk 1MB RPCs between every job pair on the two hosts.
        weight += static_cast<int64_t>(config.jobs_per_host) *
                  (config.response_bytes + 64);
      }
      traffic.Add(a, b, weight);
    }
  }
  return traffic;
}

// The RunPonyRpcRack workload on a ShardedRack. Keep the assembly in
// lockstep with rpc_rack.h: same engine/job/prober layout, same seeds,
// so the delivered work is comparable serial-vs-sharded.
// `enable_profiling` arms the engine profiler (wall-clock busy/wait per
// shard + deterministic epoch counters) and barrier-driven series
// sampling; `profile_json`, when non-null, receives
// ShardedSim::ProfileJson() after the run (bench_sim_speed --profile).
// `merged_trace_json`, when non-null, arms per-shard tracing and
// receives the merged Chrome-trace JSON (shard-stride tid remap) — with
// profiling also on, the trace carries the prof/ counter tracks that
// tools/trace_report.py rolls up.
inline ShardedRackResult RunPonyRpcRackSharded(const RpcRackConfig& config,
                                               int num_shards,
                                               int num_threads,
                                               SimDuration warmup,
                                               SimDuration window,
                                               const Placement* placement =
                                                   nullptr,
                                               bool enable_profiling = false,
                                               std::string* profile_json =
                                                   nullptr,
                                               std::string* merged_trace_json =
                                                   nullptr) {
  ShardedRack rack(config.seed, config.hosts, config.host_options,
                   num_shards, num_threads, config.queue_kind,
                   config.nic_params, placement);
  if (merged_trace_json != nullptr) {
    rack.sharded().EnableTracing();
  }
  if (enable_profiling) {
    rack.sharded().EnableProfiling();
    rack.sharded().EnableSeriesSampling(/*cadence=*/500 * kUsec);
    rack.group().EnableProfiling();
  }
  double per_job_rate =
      config.offered_gbps_per_host * 1e9 /
      (8.0 * static_cast<double>(config.response_bytes) *
       config.jobs_per_host);

  struct Job {
    PonyEngine* engine;
    std::unique_ptr<PonyClient> client_side;
    std::unique_ptr<PonyClient> server_side;
    std::unique_ptr<PonyRpcClientTask> client_task;
    std::unique_ptr<PonyRpcServerTask> server_task;
  };
  std::vector<std::vector<Job>> jobs(config.hosts);
  std::vector<PonyAddress> all_addresses;

  for (int h = 0; h < config.hosts; ++h) {
    for (int j = 0; j < config.jobs_per_host; ++j) {
      Job job;
      job.engine = rack.host(h)->CreatePonyEngine(
          "job" + std::to_string(h) + "_" + std::to_string(j));
      job.client_side = rack.host(h)->CreateClient(job.engine, "cli");
      job.server_side = rack.host(h)->CreateClient(job.engine, "srv");
      job.engine->SetDefaultSink(job.server_side.get());
      all_addresses.push_back(job.engine->address());
      jobs[h].push_back(std::move(job));
    }
  }
  std::vector<std::unique_ptr<PonyClient>> prober_clients;
  std::vector<std::unique_ptr<PonyRpcClientTask>> probers;
  for (int h = 0; h < config.hosts; ++h) {
    PonyEngine* pe = rack.host(h)->CreatePonyEngine(
        "prober" + std::to_string(h));
    prober_clients.push_back(rack.host(h)->CreateClient(pe, "prober"));
    PonyRpcClientTask::Options po;
    po.rpcs_per_sec = config.prober_qps;
    po.request_bytes = 64;
    po.response_bytes = 64;
    po.spin = config.prober_spins;
    po.rng_seed = config.seed + 1000 + h;
    for (const PonyAddress& addr : all_addresses) {
      if (addr.host != h) {
        po.peers.push_back(addr);
      }
    }
    probers.push_back(std::make_unique<PonyRpcClientTask>(
        "prober" + std::to_string(h), rack.host(h)->cpu(),
        prober_clients.back().get(), po));
  }
  for (int h = 0; h < config.hosts; ++h) {
    for (int j = 0; j < config.jobs_per_host; ++j) {
      Job& job = jobs[h][j];
      job.server_task = std::make_unique<PonyRpcServerTask>(
          "rpc_srv", rack.host(h)->cpu(), job.server_side.get());
      job.server_task->Start();
      PonyRpcClientTask::Options co;
      co.rpcs_per_sec = per_job_rate;
      co.request_bytes = 64;
      co.response_bytes = config.response_bytes;
      co.rng_seed = config.seed + h * 100 + j;
      for (const PonyAddress& addr : all_addresses) {
        if (addr == job.engine->address()) {
          continue;
        }
        if (config.cluster_hosts > 0 &&
            addr.host / config.cluster_hosts != h / config.cluster_hosts) {
          continue;  // bulk traffic stays cluster-local (as in rpc_rack.h)
        }
        co.peers.push_back(addr);
      }
      job.client_task = std::make_unique<PonyRpcClientTask>(
          "rpc_cli", rack.host(h)->cpu(), job.client_side.get(), co);
      job.client_task->Start();
    }
  }
  for (auto& p : probers) {
    p->Start();
  }

  rack.sharded().RunFor(warmup);
  for (auto& per_host : jobs) {
    for (auto& job : per_host) {
      job.client_task->ResetStats();
    }
  }
  for (auto& p : probers) {
    p->ResetStats();
  }
  // Per-host CPU totals, windowed like CpuSnapshot but over the sharded
  // rack's hosts.
  auto cpu_total = [&rack] {
    int64_t total = 0;
    for (int i = 0; i < rack.size(); ++i) {
      SimHost* h = rack.host(i);
      total += h->SnapCpuNs() + h->KernelCpuNs() + h->AppCpuNs();
    }
    return total;
  };
  int64_t cpu0 = cpu_total();
  const ShardedSim::Progress progress0 = rack.sharded().progress();
  rack.sharded().RunFor(window);
  int64_t cpu1 = cpu_total();

  ShardedRackResult result;
  result.rack.cpu_per_machine = static_cast<double>(cpu1 - cpu0) /
                                static_cast<double>(window) / config.hosts;
  int64_t bytes = 0;
  for (auto& per_host : jobs) {
    for (auto& job : per_host) {
      bytes += job.client_task->bytes_transferred();
      result.rack.background_rpcs += job.client_task->rpcs_completed();
    }
  }
  result.rack.gbps_per_machine = static_cast<double>(bytes) * 2.0 * 8.0 /
                                 ToSec(window) / 1e9 / config.hosts;
  for (auto& p : probers) {
    result.rack.prober_latency.Merge(p->latency());
  }
  result.rack.sim_events = rack.TotalEventsFired();
  result.rack.fabric_packets = rack.group().AggregateStats().delivered;
  result.rack.sim_end_time = rack.sharded().now();

  const ShardedSim::Progress& progress = rack.sharded().progress();
  result.epochs = progress.epochs - progress0.epochs;
  result.events_fired = progress.events_fired - progress0.events_fired;
  result.critical_path_events =
      progress.critical_path_events - progress0.critical_path_events;
  const ShardedFabricGroup::ExchangeStats xs = rack.group().exchange_stats();
  result.exchange_handoffs = xs.handoffs;
  result.exchange_local_direct = xs.local_direct;
  result.exchange_cross_shard = xs.cross_shard;
  result.exchanges = xs.exchanges;
  if (profile_json != nullptr && enable_profiling) {
    *profile_json = rack.sharded().ProfileJson();
  }
  if (merged_trace_json != nullptr) {
    *merged_trace_json = rack.sharded().MergedTrace()->ToJson();
  }
  return result;
}

}  // namespace snap

#endif  // BENCH_SHARDED_RACK_H_
