// Table 1 reproduction: single-application-thread throughput between two
// machines on the same ToR switch, for kernel TCP (Neper-style) and
// Snap/Pony with default MTU, 5000B MTU, and 5000B MTU + I/OAT RX copy
// offload, at 1 and 200 streams. Reports Gbps and busiest-machine CPU.
//
// Paper values (Table 1):
//   Linux TCP        1 stream: 22.0 Gbps / 1.17 CPU   200: 12.4 / 1.15
//   Snap/Pony        1 stream: 38.5 Gbps / 1.05 CPU   200: 39.1 / 1.05
//   Snap/Pony 5kMTU  1 stream: 67.5 Gbps / 1.05 CPU   200: 65.7 / 1.05
//   Snap/Pony +I/OAT 1 stream: 82.2 Gbps / 1.05 CPU   200: 80.5 / 1.05
#include "bench/bench_common.h"

namespace snap {
namespace {

constexpr SimDuration kWarmup = 30 * kMsec;
constexpr SimDuration kWindow = 100 * kMsec;

struct RunResult {
  double gbps = 0;
  double cpu = 0;  // busiest machine, cores
};

RunResult RunTcp(int streams) {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {7};  // Snap idle in this config
  Rack rack(1, 2, options);
  TcpStreamReceiverTask rx("rx", rack.host(1)->cpu(),
                           rack.host(1)->kstack(), 5001);
  rx.Start();
  TcpStreamSenderTask::Options so;
  so.dst_host = 1;
  so.num_streams = streams;
  TcpStreamSenderTask tx("tx", rack.host(0)->cpu(), rack.host(0)->kstack(),
                         so);
  tx.Start();
  rack.sim().RunFor(kWarmup);
  int64_t bytes0 = rx.bytes_received();
  int64_t cpu_a0 = rack.host(0)->KernelCpuNs() + rack.host(0)->AppCpuNs();
  int64_t cpu_b0 = rack.host(1)->KernelCpuNs() + rack.host(1)->AppCpuNs();
  rack.sim().RunFor(kWindow);
  RunResult result;
  result.gbps = static_cast<double>(rx.bytes_received() - bytes0) * 8.0 /
                ToSec(kWindow) / 1e9;
  double cpu_a = static_cast<double>(rack.host(0)->KernelCpuNs() +
                                     rack.host(0)->AppCpuNs() - cpu_a0) /
                 static_cast<double>(kWindow);
  double cpu_b = static_cast<double>(rack.host(1)->KernelCpuNs() +
                                     rack.host(1)->AppCpuNs() - cpu_b0) /
                 static_cast<double>(kWindow);
  result.cpu = std::max(cpu_a, cpu_b);
  return result;
}

RunResult RunPony(int streams, int mtu_payload, bool ioat) {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  options.pony.mtu_payload = mtu_payload;
  options.pony.ioat_copy_offload = ioat;
  Rack rack(1, 2, options);
  PonyEngine* ea = rack.host(0)->CreatePonyEngine("tx_engine");
  PonyEngine* eb = rack.host(1)->CreatePonyEngine("rx_engine");
  auto ca = rack.host(0)->CreateClient(ea, "sender");
  auto cb = rack.host(1)->CreateClient(eb, "receiver");
  PonyStreamReceiverTask rx("rx", rack.host(1)->cpu(), cb.get());
  rx.Start();
  PonyStreamSenderTask::Options so;
  so.peer = eb->address();
  so.num_streams = streams;
  so.message_bytes = 64 * 1024;
  PonyStreamSenderTask tx("tx", rack.host(0)->cpu(), ca.get(), so);
  tx.Start();
  rack.sim().RunFor(kWarmup);
  int64_t bytes0 = rx.bytes_received();
  auto cpu_of = [&](int host) {
    return rack.host(host)->SnapCpuNs() + rack.host(host)->AppCpuNs();
  };
  int64_t cpu_a0 = cpu_of(0);
  int64_t cpu_b0 = cpu_of(1);
  rack.sim().RunFor(kWindow);
  RunResult result;
  result.gbps = static_cast<double>(rx.bytes_received() - bytes0) * 8.0 /
                ToSec(kWindow) / 1e9;
  result.cpu = static_cast<double>(std::max(cpu_of(0) - cpu_a0,
                                            cpu_of(1) - cpu_b0)) /
               static_cast<double>(kWindow);
  return result;
}

}  // namespace
}  // namespace snap

int main() {
  using namespace snap;
  PrintHeader("Table 1: single-app-thread throughput (2 hosts, same ToR)");

  struct PaperRow {
    double gbps;
    double cpu;
  };
  auto report = [](const std::string& label, RunResult r, PaperRow paper) {
    std::printf(
        "  %-34s %7.1f Gbps  %5.2f CPU/s   (paper: %5.1f Gbps, %4.2f CPU)\n",
        label.c_str(), r.gbps, r.cpu, paper.gbps, paper.cpu);
  };

  report("Linux TCP, 1 stream", RunTcp(1), {22.0, 1.17});
  report("Linux TCP, 200 streams", RunTcp(200), {12.4, 1.15});
  report("Snap/Pony, 1 stream", RunPony(1, 1984, false), {38.5, 1.05});
  report("Snap/Pony, 200 streams", RunPony(200, 1984, false), {39.1, 1.05});
  report("Snap/Pony 5kB MTU, 1 stream", RunPony(1, 4936, false),
         {67.5, 1.05});
  report("Snap/Pony 5kB MTU, 200 streams", RunPony(200, 4936, false),
         {65.7, 1.05});
  report("Snap/Pony 5kB+I/OAT, 1 stream", RunPony(1, 4936, true),
         {82.2, 1.05});
  report("Snap/Pony 5kB+I/OAT, 200 streams", RunPony(200, 4936, true),
         {80.5, 1.05});

  // MTU ablation (design-choice sweep called out in DESIGN.md).
  PrintHeader("Ablation: Snap/Pony single-stream throughput vs MTU");
  for (int mtu : {1436, 1984, 2984, 4936, 8120}) {
    RunResult r = RunPony(1, mtu, false);
    std::printf("  MTU payload %5d B: %7.1f Gbps\n", mtu, r.gbps);
  }
  return 0;
}
