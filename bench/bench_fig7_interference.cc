// Figure 7 reproduction: system-level latency interference.
//
//  7(a): a prober at 1000 QPS on otherwise-idle machines. Interrupt-driven
//        designs (kernel TCP, Snap spreading) wake from deep C-states and
//        see remarkably worse latency; the compacting scheduler's spinning
//        primary is immune.
//  7(b): a harsh antagonist repeatedly mmap()/munmap()s 50MB buffers,
//        spending long stretches in non-preemptible kernel code. The
//        compacting spin core is again best; interrupt-driven designs see
//        their wakeups stuck behind kernel sections.
#include "bench/bench_common.h"

namespace snap {
namespace {

constexpr int kProbes = 2000;

SimHostOptions Options(SchedulingMode mode, bool cstates) {
  SimHostOptions options;
  options.group.mode = mode;
  options.group.dedicated_cores = {0};
  options.cpu.num_cores = 4;
  options.cpu.enable_cstates = cstates;
  return options;
}

// One prober host pair exchanging tiny one-sided reads at `qps`.
Histogram RunPonyProber(SchedulingMode mode, bool cstates,
                        bool kernel_antagonist) {
  Rack rack(3, 2, Options(mode, cstates));
  PonyEngine* ea = rack.host(0)->CreatePonyEngine("ea");
  PonyEngine* eb = rack.host(1)->CreatePonyEngine("eb");
  auto ca = rack.host(0)->CreateClient(ea, "prober");
  auto cb = rack.host(1)->CreateClient(eb, "target");
  uint64_t region = cb->RegisterRegion(4096, false);

  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<std::unique_ptr<KernelSectionTask>> antagonists;
  if (kernel_antagonist) {
    // One antagonist per core, waking constantly: every wakeup is likely
    // to land on a core inside a non-preemptible kernel section.
    for (int h = 0; h < 2; ++h) {
      for (int i = 0; i < 4; ++i) {
        rngs.push_back(std::make_unique<Rng>(70 + h * 10 + i));
        KernelSectionTask::Options ko;
        ko.sleep_mean = 5 * kUsec;
        antagonists.push_back(std::make_unique<KernelSectionTask>(
            "mmap", rack.host(h)->cpu(), rngs.back().get(), ko));
        antagonists.back()->Start();
      }
    }
  }

  // 1000 QPS: one ping per millisecond, app thread spinning so only the
  // transport wakeup is measured (Section 5.3).
  Histogram latency;
  PonyPingTask::Options po;
  po.peer = eb->address();
  po.one_sided = true;
  po.region_id = region;
  po.spin = true;
  po.iterations = kProbes;
  po.interval = 1 * kMsec;  // the low-QPS prober (idle gaps between pings)
  PonyPingTask ping("ping", rack.host(0)->cpu(), ca.get(), po);
  ping.Start();
  rack.sim().RunFor(static_cast<SimDuration>(kProbes) * kMsec + kSec);
  latency.Merge(ping.latency());
  return latency;
}

Histogram RunTcpProber(bool cstates, bool kernel_antagonist) {
  Rack rack(3, 2, Options(SchedulingMode::kDedicatedCores, cstates));
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<std::unique_ptr<KernelSectionTask>> antagonists;
  if (kernel_antagonist) {
    for (int h = 0; h < 2; ++h) {
      for (int i = 0; i < 4; ++i) {
        rngs.push_back(std::make_unique<Rng>(70 + h * 10 + i));
        KernelSectionTask::Options ko;
        ko.sleep_mean = 5 * kUsec;
        antagonists.push_back(std::make_unique<KernelSectionTask>(
            "mmap", rack.host(h)->cpu(), rngs.back().get(), ko));
        antagonists.back()->Start();
      }
    }
  }
  TcpRRServerTask::Options so;
  TcpRRServerTask server("srv", rack.host(1)->cpu(),
                         rack.host(1)->kstack(), so);
  server.Start();
  TcpRRClientTask::Options co;
  co.dst_host = 1;
  co.iterations = kProbes;
  co.interval = 1 * kMsec;  // 1000 QPS prober
  TcpRRClientTask client("cli", rack.host(0)->cpu(),
                         rack.host(0)->kstack(), co);
  client.Start();
  rack.sim().RunFor(static_cast<SimDuration>(kProbes) * kMsec + kSec);
  return client.latency();
}

void Report(const std::string& label, const Histogram& h) {
  std::printf("  %-38s p50 %7.1f us   p99 %8.1f us   n=%lld\n",
              label.c_str(), static_cast<double>(h.P50()) / 1000.0,
              static_cast<double>(h.P99()) / 1000.0,
              static_cast<long long>(h.count()));
}

}  // namespace
}  // namespace snap

int main() {
  using namespace snap;
  PrintHeader("Figure 7(a): low-QPS prober latency vs C-states");
  std::printf("  paper shape: TCP and spreading degrade badly on idle\n"
              "  machines (C-state exits); compacting (spinning) does not\n");
  Report("Linux TCP, C-states on", RunTcpProber(true, false));
  Report("Linux TCP, C-states off",
         RunTcpProber(false, false));
  Report("Snap spreading, C-states on",
         RunPonyProber(SchedulingMode::kSpreadingEngines, true, false));
  Report("Snap spreading, C-states off",
         RunPonyProber(SchedulingMode::kSpreadingEngines, false, false));
  Report("Snap compacting, C-states on",
         RunPonyProber(SchedulingMode::kCompactingEngines, true, false));

  PrintHeader("Figure 7(b): mmap()/munmap() kernel-section antagonist");
  std::printf("  paper shape: compacting best (spin core owns itself);\n"
              "  interrupt-driven wakeups stall behind non-preemptible "
              "kernel code\n");
  Report("Linux TCP + antagonist", RunTcpProber(true, true));
  Report("Snap spreading + antagonist",
         RunPonyProber(SchedulingMode::kSpreadingEngines, true, true));
  Report("Snap compacting + antagonist",
         RunPonyProber(SchedulingMode::kCompactingEngines, true, true));
  return 0;
}
