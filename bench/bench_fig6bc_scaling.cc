// Figures 6(b) and 6(c) reproduction: all-to-all 1MB RPC rack. As offered
// load grows, report per-machine CPU (6(b)) and 99th-percentile
// tiny-RPC prober latency (6(c)) for kernel TCP and for Snap/Pony under
// the spreading and compacting engine schedulers.
//
// Paper shapes: Snap CPU scales sub-linearly and is ~3x more efficient
// than TCP at high load; spreading has the best tail latency under load,
// compacting the best efficiency; TCP is worst on both axes.
//
// (The paper's rack is 42 machines x 10 jobs; this harness defaults to a
// smaller rack so the discrete-event run completes quickly — shapes, not
// absolute aggregates, are the target. Override via argv: hosts jobs.)
#include <cstdlib>

#include "bench/rpc_rack.h"

namespace snap {
namespace {

constexpr SimDuration kWarmup = 50 * kMsec;
constexpr SimDuration kWindow = 150 * kMsec;

SimHostOptions PonyOptions(SchedulingMode mode) {
  SimHostOptions options;
  options.group.mode = mode;
  options.group.dedicated_cores = {0, 1};
  options.cpu.num_cores = 10;
  return options;
}

void RunSweep(int hosts, int jobs) {
  std::vector<double> loads = {4, 10, 20, 40};

  std::printf(
      "\n  %-10s | %28s | %28s | %28s\n", "",
      "Linux TCP", "Snap/Pony spreading", "Snap/Pony compacting");
  std::printf("  %-10s | %9s %9s %8s | %9s %9s %8s | %9s %9s %8s\n",
              "load Gbps", "CPU/mach", "ach.Gbps", "p99 us", "CPU/mach",
              "ach.Gbps", "p99 us", "CPU/mach", "ach.Gbps", "p99 us");

  for (double load : loads) {
    RpcRackConfig config;
    config.hosts = hosts;
    config.jobs_per_host = jobs;
    config.offered_gbps_per_host = load;

    config.host_options = SimHostOptions{};
    config.host_options.cpu.num_cores = 10;
    // Snap idles in the TCP configuration; park its (unused) dedicated
    // group on the last core.
    config.host_options.group.dedicated_cores = {9};
    RpcRackResult tcp = RunTcpRpcRack(config, kWarmup, kWindow);

    config.host_options = PonyOptions(SchedulingMode::kSpreadingEngines);
    RpcRackResult spread = RunPonyRpcRack(config, kWarmup, kWindow);

    config.host_options = PonyOptions(SchedulingMode::kCompactingEngines);
    RpcRackResult compact = RunPonyRpcRack(config, kWarmup, kWindow);

    std::printf(
        "  %-10.0f | %9.2f %9.1f %8.0f | %9.2f %9.1f %8.0f | %9.2f %9.1f "
        "%8.0f\n",
        load, tcp.cpu_per_machine, tcp.gbps_per_machine,
        static_cast<double>(tcp.prober_latency.P99()) / 1000.0,
        spread.cpu_per_machine, spread.gbps_per_machine,
        static_cast<double>(spread.prober_latency.P99()) / 1000.0,
        compact.cpu_per_machine, compact.gbps_per_machine,
        static_cast<double>(compact.prober_latency.P99()) / 1000.0);
  }
}

}  // namespace
}  // namespace snap

int main(int argc, char** argv) {
  using namespace snap;
  int hosts = argc > 1 ? std::atoi(argv[1]) : 6;
  int jobs = argc > 2 ? std::atoi(argv[2]) : 3;
  PrintHeader("Figures 6(b)/6(c): all-to-all 1MB RPC — CPU and tail latency"
              " vs offered load");
  std::printf("  rack: %d hosts x %d jobs (paper: 42 x 10)\n", hosts, jobs);
  std::printf(
      "  paper shape: at high load Snap ~3x the Gbps/CPU of TCP;\n"
      "  prober p99: spreading < compacting < TCP under load\n");
  RunSweep(hosts, jobs);
  return 0;
}
