// Figure 9 reproduction: transparent-upgrade blackout distribution across
// a production-like population of engines. Blackout = detach -> serialize
// -> deserialize -> reattach; duration is dominated by a fixed floor plus
// state-size-proportional checkpointing, so the distribution is
// heavy-tailed and correlated with state size.
//
// Paper: median blackout 250ms (target was 200ms), heavy tail strongly
// correlated with the amount of state checkpointed.
#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"
#include "src/snap/upgrade.h"

namespace snap {
namespace {

// An engine with a parameterizable state footprint, standing in for the
// spectrum of production engines (from idle to ~10^5 flows). The footprint
// numbers drive the modeled serialization time; the payload itself is a
// compact summary (the simulator does not charge memory for state that
// only exists to be counted).
class PopulationEngine : public Engine {
 public:
  PopulationEngine(std::string name, int64_t flows, int64_t streams,
                   int64_t regions)
      : Engine(std::move(name)),
        flows_(flows),
        streams_(streams),
        regions_(regions) {}

  PollResult Poll(SimTime now, SimDuration budget_ns) override {
    return PollResult{};
  }
  bool HasWork(SimTime now) const override { return false; }

  StateFootprint Footprint() const override {
    return StateFootprint{flows_, streams_, regions_};
  }

  void SerializeState(StateWriter* w) const override {
    w->BeginSection("population_engine");
    w->PutI64(flows_);
    w->PutI64(streams_);
    w->PutI64(regions_);
  }

  void DeserializeState(StateReader* r) override {
    r->ExpectSection("population_engine");
    flows_ = r->GetI64();
    streams_ = r->GetI64();
    regions_ = r->GetI64();
  }

  int64_t flows() const { return flows_; }

 private:
  int64_t flows_;
  int64_t streams_;
  int64_t regions_;
};

class PopulationModule : public Module {
 public:
  PopulationModule() : Module("population") {}

  std::unique_ptr<Engine> CreateEngine(const std::string& name) override {
    return std::make_unique<PopulationEngine>(name, 0, 0, 0);
  }
};

}  // namespace
}  // namespace snap

int main() {
  using namespace snap;
  PrintHeader("Figure 9: transparent upgrade blackout distribution");

  Simulator sim(77);
  CpuParams cpu_params;
  CpuScheduler cpu(&sim, cpu_params);
  Fabric fabric(&sim, NicParams{});
  Nic* nic = fabric.AddHost();

  SnapInstance old_instance("snap-v1", &sim, &cpu, nic);
  old_instance.RegisterModule(std::make_unique<PopulationModule>());
  EngineGroup::Options group_options;
  group_options.mode = SchedulingMode::kSpreadingEngines;
  old_instance.CreateGroup("default", group_options);

  SnapInstance new_instance("snap-v2", &sim, &cpu, nic);
  new_instance.RegisterModule(std::make_unique<PopulationModule>());
  new_instance.CreateGroup("default", group_options);

  // Population: engine state sizes are lognormal (most engines modest,
  // a heavy tail of very hot engines), median ~110k flow-units.
  constexpr int kEngines = 400;
  Rng rng(7);
  std::vector<int64_t> flows_of(kEngines);
  for (int i = 0; i < kEngines; ++i) {
    double z = std::sqrt(-2.0 * std::log(rng.NextDouble() + 1e-12)) *
               std::cos(6.283185307 * rng.NextDouble());
    double flows = std::exp(std::log(110000.0) + 0.55 * z);
    flows_of[i] = static_cast<int64_t>(flows);
    auto engine = std::make_unique<PopulationEngine>(
        "engine" + std::to_string(i), flows_of[i], flows_of[i] / 10,
        20 + static_cast<int64_t>(rng.NextBounded(100)));
    SNAP_CHECK_OK(old_instance.AdoptEngine(std::move(engine), "population",
                                           "default"));
  }

  UpgradeManager manager(&sim, UpgradeParams{});
  UpgradeManager::Result result;
  bool done = false;
  manager.StartUpgrade(&old_instance, &new_instance,
                       [&](const UpgradeManager::Result& r) {
                         result = r;
                         done = true;
                       });
  sim.RunFor(600 * kSec);
  SNAP_CHECK(done) << "upgrade did not finish";

  const Histogram& blackout = manager.blackout_histogram();
  std::printf("  engines migrated: %zu\n", result.engines.size());
  std::printf("  blackout p25:    %7.1f ms\n",
              ToMsec(blackout.Percentile(25)));
  std::printf("  blackout median: %7.1f ms   (paper: 250 ms)\n",
              ToMsec(blackout.P50()));
  std::printf("  blackout p90:    %7.1f ms\n",
              ToMsec(blackout.Percentile(90)));
  std::printf("  blackout p99:    %7.1f ms   (paper: heavy tail)\n",
              ToMsec(blackout.P99()));
  std::printf("  blackout max:    %7.1f ms\n", ToMsec(blackout.max()));
  std::printf("  total upgrade:   %7.1f s for %d engines (one at a time)\n",
              ToSec(result.total), kEngines);

  // Correlation of blackout with state size (the paper: "strongly
  // correlates with the amount of state checkpointed").
  double mean_flows = 0;
  double mean_blackout = 0;
  for (size_t i = 0; i < result.engines.size(); ++i) {
    mean_flows += static_cast<double>(result.engines[i].footprint.flows);
    mean_blackout += static_cast<double>(result.engines[i].blackout);
  }
  mean_flows /= static_cast<double>(result.engines.size());
  mean_blackout /= static_cast<double>(result.engines.size());
  double cov = 0;
  double var_f = 0;
  double var_b = 0;
  for (const auto& er : result.engines) {
    double df = static_cast<double>(er.footprint.flows) - mean_flows;
    double db = static_cast<double>(er.blackout) - mean_blackout;
    cov += df * db;
    var_f += df * df;
    var_b += db * db;
  }
  double correlation = cov / std::sqrt(var_f * var_b);
  std::printf("  blackout-vs-state correlation: %.3f (paper: strong)\n",
              correlation);

  // CDF sketch.
  PrintHeader("Blackout CDF (Figure 9 shape)");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    std::printf("  p%-4.0f %8.1f ms\n", p,
                ToMsec(blackout.Percentile(p)));
  }
  return 0;
}
