// Figure 6(a) reproduction: mean round-trip latency of a small two-sided
// message between two machines on the same ToR switch, across five stack
// configurations.
//
// Paper values: TCP 23us, TCP busy-poll 18us, Snap/Pony 18us, Snap/Pony
// with app spin <10us, one-sided 8.8us.
#include "bench/bench_common.h"

namespace snap {
namespace {

constexpr int kIterations = 4000;

SimHostOptions Dedicated(bool busy_poll = false) {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  options.kernel.busy_poll = busy_poll;
  return options;
}

Histogram RunTcpRR(bool busy_poll) {
  Rack rack(2, 2, Dedicated(busy_poll));
  TcpRRServerTask::Options so;
  so.busy_poll = busy_poll;
  TcpRRServerTask server("srv", rack.host(1)->cpu(),
                         rack.host(1)->kstack(), so);
  server.Start();
  TcpRRClientTask::Options co;
  co.dst_host = 1;
  co.iterations = kIterations;
  co.busy_poll = busy_poll;
  TcpRRClientTask client("cli", rack.host(0)->cpu(),
                         rack.host(0)->kstack(), co);
  client.Start();
  rack.sim().RunFor(5000 * kMsec);
  return client.latency();
}

Histogram RunPony(bool app_spin, bool one_sided) {
  Rack rack(2, 2, Dedicated());
  PonyEngine* ea = rack.host(0)->CreatePonyEngine("ea");
  PonyEngine* eb = rack.host(1)->CreatePonyEngine("eb");
  auto ca = rack.host(0)->CreateClient(ea, "client");
  auto cb = rack.host(1)->CreateClient(eb, "server");
  uint64_t region = cb->RegisterRegion(1 << 16, false);
  PonyEchoServerTask server("echo", rack.host(1)->cpu(), cb.get(),
                            /*spin=*/false);
  server.Start();
  PonyPingTask::Options po;
  po.peer = eb->address();
  po.iterations = kIterations;
  po.spin = app_spin;
  po.one_sided = one_sided;
  po.region_id = region;
  po.message_bytes = 64;
  PonyPingTask ping("ping", rack.host(0)->cpu(), ca.get(), po);
  ping.Start();
  rack.sim().RunFor(5000 * kMsec);
  return ping.latency();
}

void Report(const std::string& label, const Histogram& h, double paper_us) {
  std::printf(
      "  %-34s mean %6.1f us   p50 %6.1f   p99 %6.1f   (paper mean: %g us)"
      "  [n=%lld]\n",
      label.c_str(), h.Mean() / 1000.0,
      static_cast<double>(h.P50()) / 1000.0,
      static_cast<double>(h.P99()) / 1000.0, paper_us,
      static_cast<long long>(h.count()));
}

}  // namespace
}  // namespace snap

int main() {
  using namespace snap;
  PrintHeader("Figure 6(a): small two-sided op round-trip latency");
  Report("Linux TCP (TCP_RR)", RunTcpRR(false), 23);
  Report("Linux TCP busy-polling", RunTcpRR(true), 18);
  Report("Snap/Pony (app blocks)", RunPony(false, false), 18);
  Report("Snap/Pony (app spins)", RunPony(true, false), 9.7);
  Report("Snap/Pony one-sided read", RunPony(true, true), 8.8);
  return 0;
}
