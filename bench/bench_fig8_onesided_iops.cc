// Figure 8 / Section 5.4 reproduction: one-sided operation rates. A
// data-analytics-style service exposes an indirection table + data region
// through one Pony engine on a dedicated core; remote clients hammer it
// with batched indirect reads.
//
// Paper: up to 5M remote memory accesses per second on a single dedicated
// engine core (batch-of-8 indirect reads); conventional RPC stacks see
// <100k IOPS/core; plain reads sit in between (hardware RDMA deployments
// were capped at 1M/machine).
#include <cstring>

#include "bench/bench_common.h"
#include "src/stats/time_series.h"

namespace snap {
namespace {

constexpr SimDuration kWarmup = 30 * kMsec;
constexpr SimDuration kWindow = 200 * kMsec;

struct IopsResult {
  double accesses_per_sec = 0;
  double ops_per_sec = 0;
  double server_cores = 0;
  std::vector<double> dashboard;  // per-10ms access rates (Figure 8 style)
};

IopsResult RunOneSided(OneSidedLoadTask::Mode mode, uint16_t batch,
                       int client_hosts) {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  Rack rack(9, 1 + client_hosts, options);

  // Server: one engine, one dedicated core, an indirection table over a
  // data heap (the "application-filled indirection table" of Section 3.2).
  PonyEngine* server_engine = rack.host(0)->CreatePonyEngine("analytics");
  auto server_app = rack.host(0)->CreateClient(server_engine, "analytics");
  constexpr uint64_t kTableEntries = 4096;
  uint64_t region = server_app->RegisterRegion(1 << 20, false);
  MemoryRegion* mem = server_app->region(region);
  for (uint64_t i = 0; i < kTableEntries; ++i) {
    uint64_t target = kTableEntries * 8 + (i * 64) % (1 << 19);
    std::memcpy(mem->data.data() + i * 8, &target, 8);
  }

  std::vector<std::unique_ptr<PonyClient>> clients;
  std::vector<std::unique_ptr<OneSidedLoadTask>> tasks;
  for (int h = 1; h <= client_hosts; ++h) {
    PonyEngine* ce =
        rack.host(h)->CreatePonyEngine("client" + std::to_string(h));
    clients.push_back(rack.host(h)->CreateClient(ce, "load"));
    OneSidedLoadTask::Options lo;
    lo.peer = server_engine->address();
    lo.mode = mode;
    lo.region_id = region;
    lo.batch = batch;
    lo.read_bytes = 64;
    lo.max_outstanding = 64;
    lo.table_entries = kTableEntries - batch;
    lo.rng_seed = 40 + h;
    tasks.push_back(std::make_unique<OneSidedLoadTask>(
        "load" + std::to_string(h), rack.host(h)->cpu(),
        clients.back().get(), lo));
    tasks.back()->Start();
  }

  rack.sim().RunFor(kWarmup);
  for (auto& t : tasks) {
    t->ResetStats();
  }
  int64_t server_cpu0 = rack.host(0)->SnapCpuNs();
  int64_t accesses0 = 0;
  // Dashboard-style rate series over the window: fixed-memory TimeSeries
  // fed per-sample access deltas, one 10ms bucket per sample.
  TimeSeries series(10 * kMsec, 64);
  int64_t last_cumulative = 0;
  for (SimDuration t = 0; t < kWindow; t += 10 * kMsec) {
    rack.sim().RunFor(10 * kMsec);
    int64_t cumulative = 0;
    for (auto& task : tasks) {
      cumulative += task->accesses_completed();
    }
    series.Record(rack.sim().now() - 1, cumulative - last_cumulative);
    last_cumulative = cumulative;
  }
  IopsResult result;
  int64_t accesses = 0;
  int64_t ops = 0;
  for (auto& task : tasks) {
    accesses += task->accesses_completed();
    ops += task->ops_completed();
  }
  result.accesses_per_sec =
      static_cast<double>(accesses - accesses0) / ToSec(kWindow);
  result.ops_per_sec = static_cast<double>(ops) / ToSec(kWindow);
  result.server_cores =
      static_cast<double>(rack.host(0)->SnapCpuNs() - server_cpu0) /
      static_cast<double>(kWindow);
  result.dashboard.reserve(series.num_buckets());
  for (int i = 0; i < series.num_buckets(); ++i) {
    result.dashboard.push_back(series.RatePerSec(i));
  }
  return result;
}

// Conventional RPC baseline: tiny request/response over kernel TCP on one
// server (the "gRPC sees <100k IOPS/core" comparison point).
double RunTcpRpcBaseline() {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {7};
  Rack rack(10, 3, options);
  TcpRpcContext ctx;
  TcpRpcServerTask server("srv", rack.host(0)->cpu(),
                          rack.host(0)->kstack(), 5003, &ctx);
  server.Start();
  std::vector<std::unique_ptr<TcpRpcClientTask>> clients;
  for (int h = 1; h <= 2; ++h) {
    TcpRpcClientTask::Options co;
    co.peer_hosts = {0};
    co.rpcs_per_sec = 300000;  // overload: measure the achievable ceiling
    co.response_bytes = 64;
    co.max_conns_per_peer = 16;
    co.rng_seed = 60 + h;
    clients.push_back(std::make_unique<TcpRpcClientTask>(
        "cli", rack.host(h)->cpu(), rack.host(h)->kstack(), &ctx, co));
    clients.back()->Start();
  }
  rack.sim().RunFor(kWarmup);
  for (auto& c : clients) {
    c->ResetStats();
  }
  rack.sim().RunFor(kWindow);
  int64_t rpcs = 0;
  for (auto& c : clients) {
    rpcs += c->rpcs_completed();
  }
  return static_cast<double>(rpcs) / ToSec(kWindow);
}

}  // namespace
}  // namespace snap

int main() {
  using namespace snap;
  PrintHeader("Figure 8 / Section 5.4: one-sided operation rates");

  IopsResult batched = RunOneSided(OneSidedLoadTask::Mode::kIndirectRead,
                                   8, 4);
  IopsResult plain = RunOneSided(OneSidedLoadTask::Mode::kRead, 1, 4);
  IopsResult scan = RunOneSided(OneSidedLoadTask::Mode::kScanAndRead, 1, 2);
  double rpc_baseline = RunTcpRpcBaseline();

  std::printf(
      "  %-40s %10.2f M/s on %.2f server cores  (paper: up to 5 M/s/core)\n",
      "batched indirect read (batch=8)",
      batched.accesses_per_sec / 1e6, batched.server_cores);
  std::printf(
      "  %-40s %10.2f M/s on %.2f server cores  (paper: ~1 M/s hardware "
      "RDMA cap)\n",
      "plain one-sided read", plain.accesses_per_sec / 1e6,
      plain.server_cores);
  std::printf("  %-40s %10.2f M ops/s on %.2f server cores\n",
              "scan-and-read", scan.ops_per_sec / 1e6, scan.server_cores);
  std::printf(
      "  %-40s %10.3f M/s                     (paper: gRPC <0.1 M/s/core;\n"
      "  %-40s %10s     our baseline omits gRPC framing/proto overhead)\n",
      "conventional RPC (kernel TCP) baseline", rpc_baseline / 1e6, "", "");

  PrintHeader("Figure 8 dashboard: per-10ms access rate, batched reads");
  for (size_t i = 0; i < batched.dashboard.size(); ++i) {
    std::printf("  t=%3zu0ms  %6.2f M accesses/sec\n", i + 3,
                batched.dashboard[i] / 1e6);
  }

  PrintHeader("Ablation: indirect-read batch size sweep (design choice)");
  for (uint16_t batch : {1, 2, 4, 8, 16}) {
    IopsResult r =
        RunOneSided(OneSidedLoadTask::Mode::kIndirectRead, batch, 4);
    std::printf("  batch=%2u: %6.2f M accesses/s  (%5.2f M ops/s)\n", batch,
                r.accesses_per_sec / 1e6, r.ops_per_sec / 1e6);
  }
  return 0;
}
