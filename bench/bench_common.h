// Shared scaffolding for the paper-reproduction benchmarks: rack assembly,
// measurement windows, and table printing. Each bench binary regenerates
// one table or figure from the paper's Section 5 and prints the paper's
// reported values alongside for comparison.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/apps/tcp_apps.h"
#include "src/sim/antagonist.h"

namespace snap {

// A rack of identical SimHosts on one fabric.
class Rack {
 public:
  Rack(uint64_t seed, int num_hosts, const SimHostOptions& options,
       EventQueueKind queue_kind = kDefaultEventQueueKind,
       const NicParams& nic_params = NicParams{})
      : sim_(seed, queue_kind), fabric_(&sim_, nic_params) {
    for (int i = 0; i < num_hosts; ++i) {
      hosts_.push_back(std::make_unique<SimHost>(&sim_, &fabric_,
                                                 &directory_, options));
    }
  }

  Simulator& sim() { return sim_; }
  Fabric& fabric() { return fabric_; }
  PonyDirectory& directory() { return directory_; }
  SimHost* host(int i) { return hosts_[i].get(); }
  int size() const { return static_cast<int>(hosts_.size()); }

 private:
  Simulator sim_;
  PonyDirectory directory_;
  Fabric fabric_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

// Snapshot of per-host CPU consumption, for windowed "CPU/sec" readings.
struct CpuSnapshot {
  std::vector<int64_t> totals;

  static CpuSnapshot Take(Rack& rack) {
    CpuSnapshot snap;
    for (int i = 0; i < rack.size(); ++i) {
      SimHost* h = rack.host(i);
      snap.totals.push_back(h->SnapCpuNs() + h->KernelCpuNs() +
                            h->AppCpuNs());
    }
    return snap;
  }

  // Mean cores consumed per host over the window ending at `after`.
  static double MeanCores(const CpuSnapshot& before,
                          const CpuSnapshot& after, SimDuration window) {
    double total = 0;
    for (size_t i = 0; i < before.totals.size(); ++i) {
      total += static_cast<double>(after.totals[i] - before.totals[i]);
    }
    return total / static_cast<double>(window) /
           static_cast<double>(before.totals.size());
  }
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, double measured,
                     double paper, const std::string& unit) {
  std::printf("  %-42s measured %9.2f %-10s (paper: %g)\n", label.c_str(),
              measured, unit.c_str(), paper);
}

}  // namespace snap

#endif  // BENCH_BENCH_COMMON_H_
