// Wall-clock speed of the simulation hot path, A/B-ing the hierarchical
// timer wheel against the legacy binary-heap event queue on:
//   - a micro event-churn loop (pure queue cost),
//   - a schedule-then-cancel loop (the RTO-timer pattern),
//   - the Fig. 6(b) all-to-all RPC rack workload (the real thing).
// Reports events/sec, ns/event, allocs/event (via a counting operator
// new) and packets/sec, plus the wheel-vs-heap speedup.
//
// Usage:
//   bench_sim_speed [--smoke] [--json PATH] [--only CASE]
// --smoke shrinks every workload for CI (runs in ~seconds, labeled
// `bench` in ctest); --json writes machine-readable results for
// tools/bench_trajectory.py, which maintains BENCH_sim_speed.json;
// --only runs a single case (event_churn / cancel_churn / rack_fig6b /
// rack_scaling), mainly so a profiler sees one workload (incompatible
// with --json).
//
// The rack_scaling case sweeps rack sizes x shard counts on the sharded
// conservative-sync engine (bench/sharded_rack.h), reporting wall-clock
// events/sec alongside the deterministic critical-path speedup, with a
// parity check that delivered work is invariant across shard counts.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/rpc_rack.h"
#include "bench/sharded_rack.h"

// ---------------------------------------------------------------------------
// Allocation counting: every global new/delete in this binary bumps a
// counter, so each measurement can report allocs/event. The counter's
// overhead applies equally to both queue implementations.
// ---------------------------------------------------------------------------
namespace {
std::atomic<int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace snap {
namespace {

struct Measurement {
  double wall_sec = 0;
  int64_t events = 0;   // events fired
  int64_t allocs = 0;   // global operator new calls during the run
  int64_t packets = 0;  // fabric deliveries (rack only)
  double sim_sec = 0;   // simulated seconds covered (rack only)

  double events_per_sec() const {
    return wall_sec > 0 ? static_cast<double>(events) / wall_sec : 0;
  }
  double ns_per_event() const {
    return events > 0 ? wall_sec * 1e9 / static_cast<double>(events) : 0;
  }
  double allocs_per_event() const {
    return events > 0
               ? static_cast<double>(allocs) / static_cast<double>(events)
               : 0;
  }
  double packets_per_sec() const {
    return wall_sec > 0 ? static_cast<double>(packets) / wall_sec : 0;
  }
};

class Timed {
 public:
  Timed() : allocs0_(g_alloc_count.load(std::memory_order_relaxed)) {}
  void Finish(Measurement* m) const {
    m->wall_sec = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    m->allocs = g_alloc_count.load(std::memory_order_relaxed) - allocs0_;
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  int64_t allocs0_;
};

// Pure queue throughput: a self-rescheduling event population, the shape
// of the simulation main loop (every pop schedules a successor).
Measurement MeasureEventChurn(EventQueueKind kind, int64_t total_events) {
  Simulator sim(1, kind);
  const int kPopulation = 512;
  int64_t remaining = total_events;
  struct Ticker {
    Simulator* sim;
    int64_t* remaining;
    void Tick() {
      if (--*remaining <= 0) {
        return;
      }
      sim->Schedule(1 + (*remaining % 700), [t = *this]() mutable { t.Tick(); });
    }
  };
  Ticker ticker{&sim, &remaining};
  for (int i = 0; i < kPopulation; ++i) {
    sim.Schedule(1 + i, [t = ticker]() mutable { t.Tick(); });
  }
  Timed timed;
  sim.RunAll();
  Measurement m;
  timed.Finish(&m);
  m.events = sim.event_queue().stats().fired;
  return m;
}

// Schedule-then-cancel: most timers (RTO, interrupt moderation) never
// fire; the queue must absorb and reap them cheaply.
Measurement MeasureCancelChurn(EventQueueKind kind, int64_t total_events) {
  Simulator sim(1, kind);
  Timed timed;
  for (int64_t i = 0; i < total_events; ++i) {
    EventHandle h = sim.Schedule(1000 * kUsec, [] {});
    h.Cancel();
    if ((i & 1023) == 0) {
      sim.RunFor(1);
    }
  }
  sim.RunAll();
  Measurement m;
  timed.Finish(&m);
  m.events = total_events;  // scheduled+cancelled pairs processed
  return m;
}

// The Fig. 6(b) rack: 6 hosts x 3 jobs of all-to-all 1MB RPCs plus
// latency probers, at 20 Gbps offered load per host. The headline case
// runs kRackTrials identical simulations and keeps the fastest: the
// simulation is deterministic, so the trials differ only by external
// machine noise (other tenants, thermal state), and best-of-N is the
// standard estimator for the code's actual speed under that noise. The
// recorded pre-PR baseline in BENCH_sim_speed.json is best-of-N the same
// way.
constexpr int kRackTrials = 3;

RpcRackConfig RackConfig(EventQueueKind kind) {
  RpcRackConfig config;
  config.hosts = 6;
  config.jobs_per_host = 3;
  config.offered_gbps_per_host = 20.0;
  config.queue_kind = kind;
  // The legacy-heap leg is the faithful pre-PR configuration: binary-heap
  // queue AND per-packet fabric delivery (batching did not exist yet).
  config.nic_params.batched_delivery = (kind == EventQueueKind::kTimerWheel);
  config.host_options.group.mode = SchedulingMode::kSpreadingEngines;
  config.host_options.group.dedicated_cores = {0, 1};
  config.host_options.cpu.num_cores = 10;
  return config;
}

Measurement MeasureRack(EventQueueKind kind, SimDuration warmup,
                        SimDuration window) {
  RpcRackConfig config = RackConfig(kind);
  Measurement best;
  for (int trial = 0; trial < kRackTrials; ++trial) {
    Timed timed;
    RpcRackResult result = RunPonyRpcRack(config, warmup, window);
    Measurement m;
    timed.Finish(&m);
    m.events = result.sim_events;
    m.packets = result.fabric_packets;
    m.sim_sec = ToSec(result.sim_end_time);
    if (trial == 0 || m.wall_sec < best.wall_sec) {
      best = m;
    }
  }
  return best;
}

void PrintMeasurement(const char* name, const char* kind,
                      const Measurement& m) {
  std::printf(
      "  %-18s %-11s %10.3fs wall  %9.2fM events  %8.2fM ev/s  %7.1f "
      "ns/ev  %6.3f allocs/ev",
      name, kind, m.wall_sec, static_cast<double>(m.events) / 1e6,
      m.events_per_sec() / 1e6, m.ns_per_event(), m.allocs_per_event());
  if (m.packets > 0) {
    std::printf("  %8.2fM pkt/s", m.packets_per_sec() / 1e6);
  }
  std::printf("\n");
}

void JsonMeasurement(FILE* f, const char* kind, const Measurement& m,
                     bool last) {
  std::fprintf(f,
               "      \"%s\": {\"wall_sec\": %.6f, \"events\": %lld, "
               "\"events_per_sec\": %.1f, \"ns_per_event\": %.3f, "
               "\"allocs\": %lld, \"allocs_per_event\": %.4f, "
               "\"packets\": %lld, \"packets_per_sec\": %.1f, "
               "\"sim_sec\": %.6f}%s\n",
               kind, m.wall_sec, static_cast<long long>(m.events),
               m.events_per_sec(), m.ns_per_event(),
               static_cast<long long>(m.allocs), m.allocs_per_event(),
               static_cast<long long>(m.packets), m.packets_per_sec(),
               m.sim_sec, last ? "" : ",");
}

// ---------------------------------------------------------------------------
// Rack-scaling leg: the all-to-all RPC rack at increasing sizes, executed
// by the sharded conservative-sync engine at increasing shard counts.
//
// Two readings per point:
//   - wall-clock events/sec (honest, machine-dependent: on a single-core
//     runner the threaded shards time-slice one core and cannot beat
//     serial);
//   - speedup_critical_path = events_fired / critical_path_events, the
//     deterministic events/sec speedup an ideal one-core-per-shard machine
//     would see. It is a pure function of the simulation (epoch structure
//     is thread-count invariant), so it is stable across runners and is
//     what the scaling gate checks.
// Parity: delivered packets and completed RPCs must be identical across
// every shard count at every rack size (the conservative engine may not
// change simulated results, only how they are computed).
// ---------------------------------------------------------------------------
struct ScalingPoint {
  int hosts = 0;
  int shards = 0;
  int num_threads = 0;  // worker threads actually used (0 = caller thread)
  Measurement m;
  int64_t epochs = 0;
  int64_t critical_path_events = 0;
  int64_t handoffs = 0;
  int64_t local_direct = 0;
  int64_t cross_shard = 0;
  int64_t exchanges = 0;
  int64_t rpcs = 0;
  double speedup_cp = 0;
  double speedup_wall = 0;  // vs the 1-shard point of the same rack
};

// Scaling racks bigger than the Fig. 6(b) baseline are clustered: bulk
// RPC traffic stays inside clusters of `cluster_hosts` consecutive hosts
// (probers remain all-to-all) and crossing a cluster boundary costs extra
// propagation. This is the shape the tentpole optimizations exploit —
// traffic-aware placement packs whole clusters onto shards, and the
// per-pair lookahead matrix lets cluster-disjoint shard pairs run
// inter-cluster-latency-long epochs.
RpcRackConfig ScalingRackConfig(int hosts) {
  RpcRackConfig config = RackConfig(EventQueueKind::kTimerWheel);
  config.hosts = hosts;
  // Big racks run one background job per host: the sweep scales the
  // fabric and host count, not the per-host app mix.
  config.jobs_per_host = hosts > 6 ? 1 : 3;
  if (hosts > 6) {
    config.cluster_hosts = std::max(6, hosts / 16);
    config.nic_params.hosts_per_cluster = config.cluster_hosts;
    config.nic_params.inter_cluster_extra_delay = 4 * kUsec;
  }
  return config;
}

ScalingPoint MeasureShardedRack(int hosts, int shards, SimDuration warmup,
                                SimDuration window,
                                bool enable_profiling = false,
                                std::string* profile_json = nullptr) {
  RpcRackConfig config = ScalingRackConfig(hosts);
  ScalingPoint point;
  point.hosts = hosts;
  point.shards = shards;
  // Worker threads = shards, capped by the machine's cores (threads
  // beyond that only time-slice); results are bit-identical to
  // sequential execution, so wall time is the only thing the thread
  // count can change.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  point.num_threads =
      shards > 1 ? std::min(shards, std::max(1, hw)) : 0;
  // Traffic-aware placement from the workload-declared matrix; the
  // 1-shard point trivially places everything on shard 0.
  Placement placement = Placement::TrafficAware(
      BuildRackTrafficMatrix(config), shards);
  Timed timed;
  ShardedRackResult result = RunPonyRpcRackSharded(
      config, shards, point.num_threads, warmup, window, &placement,
      enable_profiling, profile_json);
  timed.Finish(&point.m);
  point.m.events = result.rack.sim_events;
  point.m.packets = result.rack.fabric_packets;
  point.m.sim_sec = ToSec(result.rack.sim_end_time);
  point.epochs = result.epochs;
  point.critical_path_events = result.critical_path_events;
  point.handoffs = result.exchange_handoffs;
  point.local_direct = result.exchange_local_direct;
  point.cross_shard = result.exchange_cross_shard;
  point.exchanges = result.exchanges;
  point.rpcs = result.rack.background_rpcs;
  point.speedup_cp = result.speedup_critical_path();
  return point;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string only;
  std::string trace_path;
  std::string trace_sharded_path;
  std::string profile_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-sharded") == 0 && i + 1 < argc) {
      trace_sharded_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH] [--only CASE] "
                   "[--trace PATH] [--trace-sharded PATH] [--profile PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!only.empty() && !json_path.empty()) {
    std::fprintf(stderr, "--only and --json are mutually exclusive\n");
    return 2;
  }

  const int64_t churn_events = smoke ? 200'000 : 4'000'000;
  const int64_t cancel_events = smoke ? 100'000 : 2'000'000;
  const SimDuration rack_warmup = smoke ? 5 * kMsec : 20 * kMsec;
  const SimDuration rack_window = smoke ? 15 * kMsec : 100 * kMsec;

  PrintHeader(smoke ? "Simulator speed (smoke)" : "Simulator speed");

  struct Case {
    const char* name;
    Measurement wheel;
    Measurement heap;
  };
  Case cases[3];

  auto want = [&only](const char* name) {
    return only.empty() || only == name;
  };
  // The rack workload runs first: it is the headline comparison against
  // the recorded pre-PR baseline, which was measured on a cold machine.
  // Running it after seconds of churn load would measure it on a
  // thermally throttled core that the baseline never saw.
  cases[0].name = "rack_fig6b";
  if (want(cases[0].name)) {
    cases[0].wheel = MeasureRack(EventQueueKind::kTimerWheel, rack_warmup,
                                 rack_window);
    cases[0].heap = MeasureRack(EventQueueKind::kLegacyHeap, rack_warmup,
                                rack_window);
  }
  cases[1].name = "event_churn";
  if (want(cases[1].name)) {
    cases[1].wheel = MeasureEventChurn(EventQueueKind::kTimerWheel,
                                       churn_events);
    cases[1].heap = MeasureEventChurn(EventQueueKind::kLegacyHeap,
                                      churn_events);
  }
  cases[2].name = "cancel_churn";
  if (want(cases[2].name)) {
    cases[2].wheel = MeasureCancelChurn(EventQueueKind::kTimerWheel,
                                        cancel_events);
    cases[2].heap = MeasureCancelChurn(EventQueueKind::kLegacyHeap,
                                       cancel_events);
  }

  for (const Case& c : cases) {
    if (c.wheel.events == 0 && c.heap.events == 0) {
      continue;  // skipped by --only
    }
    PrintMeasurement(c.name, "timer_wheel", c.wheel);
    PrintMeasurement(c.name, "legacy_heap", c.heap);
    const double speedup =
        c.heap.events_per_sec() > 0
            ? c.wheel.events_per_sec() / c.heap.events_per_sec()
            : 0;
    std::printf("  %-18s speedup (events/sec, wheel vs heap): %.2fx\n",
                c.name, speedup);
  }
  const Measurement& rack = cases[0].wheel;
  if (rack.wall_sec > 0) {
    std::printf("  rack sim-time/wall-time: %.1fx (%.3f sim-sec in %.3f s)\n",
                rack.sim_sec / rack.wall_sec, rack.sim_sec, rack.wall_sec);
  }

  // Rack-scaling leg: rack sizes x shard counts on the sharded engine.
  std::vector<ScalingPoint> scaling;
  bool scaling_parity_ok = true;
  double scaling_speedup_best = 0;
  ScalingPoint prof_point;
  double profiler_overhead_pct = 0;
  bool have_profiler = false;
  std::string profile_json;
  if (want("rack_scaling")) {
    const std::vector<int> rack_sizes =
        smoke ? std::vector<int>{6, 24} : std::vector<int>{6, 96, 384};
    const int hw_cores =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    std::printf("  rack scaling (sharded engine, conservative sync, "
                "%d hw cores):\n",
                hw_cores);
    for (int hosts : rack_sizes) {
      // The largest rack adds a 16-shard point: the critical-path speedup
      // is bounded by the shard count, so the headline number needs more
      // shards than the mid-sweep points.
      std::vector<int> shard_counts = {1, 2, 4, 8};
      if (hosts == rack_sizes.back()) {
        shard_counts.push_back(16);
      }
      // Window shrinks with rack size so every point stays minutes-cheap;
      // the per-point simulated work is what the critical-path ratio
      // normalizes over, so points remain comparable.
      SimDuration sc_warmup, sc_window;
      if (smoke) {
        sc_warmup = 1 * kMsec;
        sc_window = hosts > 6 ? 2 * kMsec : 3 * kMsec;
      } else {
        sc_warmup = hosts > 96 ? 1 * kMsec : (hosts > 6 ? 2 * kMsec : 5 * kMsec);
        sc_window = hosts > 96 ? 4 * kMsec : (hosts > 6 ? 8 * kMsec : 20 * kMsec);
      }
      int64_t first_packets = -1;
      int64_t first_rpcs = -1;
      double serial_wall = 0;
      for (int shards : shard_counts) {
        ScalingPoint p = MeasureShardedRack(hosts, shards, sc_warmup,
                                            sc_window);
        if (first_packets < 0) {
          first_packets = p.m.packets;
          first_rpcs = p.rpcs;
          serial_wall = p.m.wall_sec;
        } else if (p.m.packets != first_packets || p.rpcs != first_rpcs) {
          scaling_parity_ok = false;
          std::printf("  PARITY FAIL: %d hosts, %d shards: packets %lld vs "
                      "%lld, rpcs %lld vs %lld\n",
                      hosts, shards, static_cast<long long>(p.m.packets),
                      static_cast<long long>(first_packets),
                      static_cast<long long>(p.rpcs),
                      static_cast<long long>(first_rpcs));
        }
        p.speedup_wall =
            p.m.wall_sec > 0 ? serial_wall / p.m.wall_sec : 0;
        if (hosts == rack_sizes.back() && shards == shard_counts.back()) {
          scaling_speedup_best = p.speedup_cp;
        }
        std::printf("    %4d hosts %2d shards %2d thr  %8.3fs wall "
                    "(%4.2fx)  %8.2fM events  %7.2fM ev/s  cp-speedup "
                    "%5.2fx  %7lld epochs  %6lld exch  %9lld handoffs "
                    "(%lld cross, %lld local)\n",
                    p.hosts, p.shards, p.num_threads, p.m.wall_sec,
                    p.speedup_wall,
                    static_cast<double>(p.m.events) / 1e6,
                    p.m.events_per_sec() / 1e6, p.speedup_cp,
                    static_cast<long long>(p.epochs),
                    static_cast<long long>(p.exchanges),
                    static_cast<long long>(p.handoffs),
                    static_cast<long long>(p.cross_shard),
                    static_cast<long long>(p.local_direct));
        scaling.push_back(p);
      }
      if (hw_cores < shard_counts.back()) {
        // Soft gate only: wall-clock numbers on an undersized runner
        // time-slice shards onto too few cores; the critical-path ratio
        // is the machine-independent scaling signal.
        std::printf("  note: %d hw cores < %d shards; wall-clock speedups "
                    "above are core-starved (cp-speedup is the signal)\n",
                    hw_cores, shard_counts.back());
      }
    }
    std::printf("  rack scaling parity (packets+rpcs invariant across "
                "shard counts): %s\n",
                scaling_parity_ok ? "OK" : "FAILED");

    // Profiler overhead: the largest sweep point re-run with the engine
    // profiler + series sampling armed, against an unprofiled run of the
    // identical configuration. Measured as the median of kRackTrials
    // back-to-back (plain, profiled) pairs: single runs on a shared host
    // differ by 15-30% from machine noise alone — far more than the
    // effect being measured — so pairing controls for load drift and the
    // median discards the odd trial a noisy neighbour lands on. The
    // acceptance bar is <= 5% events/sec; the number is recorded in the
    // JSON so tools/bench_trajectory.py tracks it across PRs.
    if (!scaling.empty()) {
      const ScalingPoint& largest = scaling.back();
      SimDuration pw, pn;
      if (smoke) {
        pw = 1 * kMsec;
        pn = 2 * kMsec;
      } else {
        pw = largest.hosts > 96 ? 1 * kMsec
                                : (largest.hosts > 6 ? 2 * kMsec : 5 * kMsec);
        pn = largest.hosts > 96 ? 4 * kMsec
                                : (largest.hosts > 6 ? 8 * kMsec : 20 * kMsec);
      }
      std::vector<double> pair_overhead_pct;
      for (int trial = 0; trial < kRackTrials; ++trial) {
        ScalingPoint pp =
            MeasureShardedRack(largest.hosts, largest.shards, pw, pn);
        ScalingPoint qp = MeasureShardedRack(largest.hosts, largest.shards,
                                             pw, pn,
                                             /*enable_profiling=*/true,
                                             &profile_json);
        if (trial == 0 || qp.m.wall_sec < prof_point.m.wall_sec) {
          prof_point = qp;
        }
        const double pct =
            qp.m.events_per_sec() > 0
                ? (pp.m.events_per_sec() / qp.m.events_per_sec() - 1.0) *
                      100.0
                : 0;
        pair_overhead_pct.push_back(pct);
        std::printf("    overhead trial %d: plain %.3fs, profiled %.3fs "
                    "(%+.2f%%)\n",
                    trial, pp.m.wall_sec, qp.m.wall_sec, pct);
      }
      have_profiler = true;
      std::sort(pair_overhead_pct.begin(), pair_overhead_pct.end());
      profiler_overhead_pct =
          pair_overhead_pct[pair_overhead_pct.size() / 2];
      std::printf("  profiler overhead (%d hosts, %d shards, median of %d "
                  "paired trials): %+.2f%%\n",
                  largest.hosts, largest.shards, kRackTrials,
                  profiler_overhead_pct);
      if (!profile_path.empty()) {
        if (FILE* pf = std::fopen(profile_path.c_str(), "w")) {
          std::fprintf(pf, "%s\n", profile_json.c_str());
          std::fclose(pf);
          std::printf("  wrote %s\n", profile_path.c_str());
        } else {
          std::fprintf(stderr, "cannot write %s\n", profile_path.c_str());
          return 1;
        }
      }
    }
  }

  // Dedicated traced run (never timed): writes a Chrome-trace JSON of the
  // rack workload for chrome://tracing / Perfetto / tools/trace_report.py,
  // and prints the telemetry dashboard for the same run.
  if (!trace_path.empty()) {
    TraceRecorder tracer;
    RpcRackConfig config = RackConfig(EventQueueKind::kTimerWheel);
    config.tracer = &tracer;
    RpcRackResult result = RunPonyRpcRack(config, rack_warmup, rack_window);
    if (!tracer.WriteJson(trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("  wrote %s (%zu trace events, %.3f sim-sec)\n",
                trace_path.c_str(), tracer.size(),
                ToSec(result.sim_end_time));
    std::printf("%s", result.telemetry_dashboard.c_str());
  }

  // Dedicated sharded traced run (never timed): a small profiled rack on
  // the sharded engine, merged Chrome trace with the per-shard prof/
  // counter tracks for tools/trace_report.py's profiler rollup.
  if (!trace_sharded_path.empty()) {
    std::string merged;
    RunPonyRpcRackSharded(ScalingRackConfig(24), /*num_shards=*/4,
                          /*num_threads=*/1, /*warmup=*/1 * kMsec,
                          /*window=*/2 * kMsec, /*placement=*/nullptr,
                          /*enable_profiling=*/true, /*profile_json=*/nullptr,
                          &merged);
    FILE* tf = std::fopen(trace_sharded_path.c_str(), "w");
    if (tf == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_sharded_path.c_str());
      return 1;
    }
    std::fwrite(merged.data(), 1, merged.size(), tf);
    std::fclose(tf);
    std::printf("  wrote %s (merged sharded trace, %zu bytes)\n",
                trace_sharded_path.c_str(), merged.size());
  }

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n  \"benchmarks\": {\n",
                 smoke ? "true" : "false");
    for (size_t i = 0; i < 3; ++i) {
      const Case& c = cases[i];
      std::fprintf(f, "    \"%s\": {\n", c.name);
      JsonMeasurement(f, "timer_wheel", c.wheel, false);
      JsonMeasurement(f, "legacy_heap", c.heap, false);
      const double speedup =
          c.heap.events_per_sec() > 0
              ? c.wheel.events_per_sec() / c.heap.events_per_sec()
              : 0;
      std::fprintf(f, "      \"speedup_events_per_sec\": %.4f\n    }%s\n",
                   speedup, i + 1 < 3 ? "," : "");
    }
    if (!scaling.empty()) {
      std::fprintf(f, "    ,\"rack_scaling\": {\n      \"points\": [\n");
      for (size_t i = 0; i < scaling.size(); ++i) {
        const ScalingPoint& p = scaling[i];
        std::fprintf(
            f,
            "        {\"hosts\": %d, \"shards\": %d, \"num_threads\": %d, "
            "\"wall_sec\": %.6f, \"speedup_wall\": %.4f, "
            "\"events\": %lld, \"events_per_sec\": %.1f, "
            "\"packets\": %lld, \"rpcs\": %lld, \"epochs\": %lld, "
            "\"critical_path_events\": %lld, "
            "\"speedup_critical_path\": %.4f, \"handoffs\": %lld, "
            "\"local_direct\": %lld, \"cross_shard\": %lld, "
            "\"exchanges\": %lld}%s\n",
            p.hosts, p.shards, p.num_threads, p.m.wall_sec, p.speedup_wall,
            static_cast<long long>(p.m.events), p.m.events_per_sec(),
            static_cast<long long>(p.m.packets),
            static_cast<long long>(p.rpcs),
            static_cast<long long>(p.epochs),
            static_cast<long long>(p.critical_path_events), p.speedup_cp,
            static_cast<long long>(p.handoffs),
            static_cast<long long>(p.local_direct),
            static_cast<long long>(p.cross_shard),
            static_cast<long long>(p.exchanges),
            i + 1 < scaling.size() ? "," : "");
      }
      const int hw_cores = std::max(
          1, static_cast<int>(std::thread::hardware_concurrency()));
      std::fprintf(f,
                   "      ],\n      \"hw_cores\": %d,\n"
                   "      \"parity_ok\": %s,\n"
                   "      \"speedup_critical_path_max_rack\": %.4f",
                   hw_cores, scaling_parity_ok ? "true" : "false",
                   scaling_speedup_best);
      if (have_profiler) {
        std::fprintf(
            f,
            ",\n      \"profiler\": {\"hosts\": %d, \"shards\": %d, "
            "\"wall_sec\": %.6f, \"events_per_sec\": %.1f, "
            "\"overhead_pct\": %.3f}",
            prof_point.hosts, prof_point.shards, prof_point.m.wall_sec,
            prof_point.m.events_per_sec(), profiler_overhead_pct);
      }
      std::fprintf(f, "\n    }\n");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace snap

int main(int argc, char** argv) { return snap::Main(argc, argv); }
