#!/usr/bin/env python3
"""Perf-trajectory runner: executes a benchmark binary and appends the
results to BENCH_<name>.json so every PR leaves a recorded datapoint.

Usage:
    tools/bench_trajectory.py [--bench sim_speed|qos_isolation]
                              [--build-dir build] [--out BENCH_<name>.json]
                              [--smoke] [--baseline-check]

Runs <build-dir>/bench/bench_<name> (building is the caller's job),
stamps the result with the git revision and date, and appends it to the
history file's "runs" list. The newest run is also mirrored at the top
level under "latest" for easy reading.

--baseline-check gates per bench:
  sim_speed      rack workload must show >= 3x events/sec for the timer
                 wheel against the pre-PR configuration (legacy heap
                 queue); compares against the recorded "pre_pr_baseline"
                 if present, else the legacy-heap A/B leg of the same run.
                 The rack_scaling leg additionally requires delivered
                 work to be identical across shard counts (parity_ok)
                 and the critical-path speedup at the highest shard
                 count on the largest rack to reach 8x (4x under
                 --smoke, where the rack is small). The critical-path
                 ratio is a deterministic property of the simulation, so
                 this gate is runner-independent, unlike wall-clock
                 events/sec. Wall-clock thread scaling is recorded per
                 point (num_threads, speedup_wall) but only soft-gated:
                 when the runner has fewer cores than the widest shard
                 count, a warning is printed instead of a failure. The
                 engine-profiler overhead on the largest scaling point
                 (median of paired plain/profiled trials) is recorded
                 and soft-reported against its <= 5% acceptance bar.
  qos_isolation  the weight-3 victim must retain >= 0.9 of its offered
                 goodput under the 4x aggressor (isolation_ratio), and
                 the qos-off run must still show the collapse the
                 subsystem exists to fix (collapse_ratio <= 0.7).
  live_echo      every case that ran must have completed all its RPCs
                 with zero transport errors (the runner-independent
                 property of a wall-clock benchmark); at least the two
                 loopback cases must have run, and the blocking-notify
                 case's client must have spent its idle time sleeping
                 (poll passes bounded by a small multiple of the RPC
                 count). On runners with >= 4 hardware cores — where the
                 two engine workers and two app threads genuinely run in
                 parallel — loopback_throughput is additionally
                 hard-gated (>= 1500 rpc/s, p99 <= 50 ms); core-starved
                 runners print a warning instead, since wall-clock
                 numbers there measure the scheduler's time slicing, not
                 the transport.

Only the standard library is used.
"""

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_revision():
    try:
        out = subprocess.run(
            ["git", "-C", REPO_ROOT, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_bench(build_dir, name, smoke):
    bench = os.path.join(build_dir, "bench", f"bench_{name}")
    if not os.path.exists(bench):
        sys.exit(f"error: {bench} not found (build the repo first: "
                 f"cmake --build {build_dir} --target bench_{name})")
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json",
                                     delete=False) as tmp:
        tmp_path = tmp.name
    try:
        cmd = [bench, "--json", tmp_path] + (["--smoke"] if smoke else [])
        subprocess.run(cmd, check=True)
        with open(tmp_path) as f:
            return json.load(f)
    finally:
        os.unlink(tmp_path)


def load_history(path):
    if os.path.exists(path):
        with open(path) as f:
            return json.load(f)
    return {"runs": []}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="sim_speed",
                        choices=["sim_speed", "qos_isolation", "live_echo"])
    parser.add_argument("--build-dir",
                        default=os.path.join(REPO_ROOT, "build"))
    parser.add_argument("--out", default=None,
                        help="history file (default BENCH_<bench>.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced CI workload")
    parser.add_argument("--baseline-check", action="store_true",
                        help="fail unless this bench's gate holds (see "
                             "module docstring)")
    args = parser.parse_args()
    if args.out is None:
        args.out = os.path.join(REPO_ROOT, f"BENCH_{args.bench}.json")

    result = run_bench(args.build_dir, args.bench, args.smoke)
    entry = {
        "git_revision": git_revision(),
        "date": datetime.datetime.now(datetime.timezone.utc)
                .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "smoke": result.get("smoke", args.smoke),
        "benchmarks": result["benchmarks"],
    }
    for key in ("isolation_ratio", "collapse_ratio", "link_gbps",
                "victim_offered_gbps", "aggressor_offered_gbps",
                "hw_cores"):
        if key in result:
            entry[key] = result[key]

    history = load_history(args.out)
    history.setdefault("runs", []).append(entry)
    history["latest"] = entry
    with open(args.out, "w") as f:
        json.dump(history, f, indent=2)
        f.write("\n")
    print(f"appended run {entry['git_revision']} to {args.out} "
          f"({len(history['runs'])} runs recorded)")

    if args.bench == "live_echo":
        ran = {name: b for name, b in entry["benchmarks"].items()
               if b.get("ran")}
        skipped = [name for name, b in entry["benchmarks"].items()
                   if not b.get("ran")]
        bad = [name for name, b in ran.items()
               if not b.get("completed") or b.get("errors", 0) != 0]
        for name, b in ran.items():
            print(f"{name}: {b.get('rpcs_per_sec', 0):,.0f} rpc/s, "
                  f"{b.get('goodput_mbps', 0):.1f} Mbps, "
                  f"p50 {b.get('p50_rtt_us', 0):.1f}us / "
                  f"p99 {b.get('p99_rtt_us', 0):.1f}us, "
                  f"{'clean' if name not in bad else 'INCOMPLETE'}")
        for name in skipped:
            print(f"{name}: skipped "
                  f"({entry['benchmarks'][name].get('skip_reason', '?')})")
        if args.baseline_check:
            if bad:
                sys.exit(f"baseline check FAILED: incomplete or errored "
                         f"cases: {', '.join(sorted(bad))}")
            loopback = [n for n in ran if n.startswith("loopback_")]
            if len(loopback) < 2:
                sys.exit("baseline check FAILED: loopback cases did not "
                         "run")
            blocking = ran.get("loopback_blocking")
            if blocking is not None:
                # Blocking notify means the app thread sleeps when idle:
                # a doorbell-driven client needs a handful of poll passes
                # per RPC (wakeup, drain, window refill), not the
                # millions a spin-poll loop burns.
                passes = blocking.get("client_poll_passes", 0)
                budget = 30 * blocking.get("iterations", 0) + 1000
                if passes > budget:
                    sys.exit(f"baseline check FAILED: blocking-notify "
                             f"client busy-polled ({passes} poll passes "
                             f"> budget {budget})")
                if blocking.get("client_waits", 0) <= 0:
                    sys.exit("baseline check FAILED: blocking-notify "
                             "client never slept on the doorbell")
            hw_cores = entry.get("hw_cores", 0)
            tput = ran.get("loopback_throughput", {})
            rpcs = tput.get("rpcs_per_sec", 0)
            p99 = tput.get("p99_rtt_us", 0)
            if hw_cores >= 4:
                if rpcs < 1500:
                    sys.exit(f"baseline check FAILED: loopback_throughput "
                             f"{rpcs:,.0f} rpc/s < 1500 on a "
                             f"{hw_cores}-core runner")
                if p99 > 50000:
                    sys.exit(f"baseline check FAILED: loopback_throughput "
                             f"p99 {p99:,.0f}us > 50ms on a "
                             f"{hw_cores}-core runner")
            else:
                print(f"warning: runner has {hw_cores} core(s); live "
                      f"wall-clock bars not gated (loopback_throughput "
                      f"{rpcs:,.0f} rpc/s, p99 {p99:,.0f}us)")
        return

    if args.bench == "qos_isolation":
        isolation = entry.get("isolation_ratio", 0.0)
        collapse = entry.get("collapse_ratio", 1.0)
        print(f"qos isolation ratio: {isolation:.3f} (target >= 0.9), "
              f"collapse ratio without qos: {collapse:.3f} "
              f"(target <= 0.7)")
        if args.baseline_check:
            if isolation < 0.9:
                sys.exit(f"baseline check FAILED: isolation ratio "
                         f"{isolation:.3f} < 0.9")
            if collapse > 0.7:
                sys.exit(f"baseline check FAILED: qos-off victim did not "
                         f"collapse ({collapse:.3f} > 0.7)")
        return

    scaling = entry["benchmarks"].get("rack_scaling")
    if scaling is not None:
        parity = scaling.get("parity_ok", False)
        cp_speedup = scaling.get("speedup_critical_path_max_rack", 0.0)
        cp_floor = 4.0 if entry.get("smoke") else 8.0
        hw_cores = scaling.get("hw_cores", 0)
        points = scaling.get("points", [])
        max_shards = max((p.get("shards", 0) for p in points), default=0)
        best_wall = max((p.get("speedup_wall", 0.0) for p in points),
                        default=0.0)
        print(f"rack scaling: parity {'OK' if parity else 'FAILED'}, "
              f"critical-path speedup at max rack/shards "
              f"{cp_speedup:.2f}x (floor {cp_floor}x), "
              f"best wall-clock speedup {best_wall:.2f}x on "
              f"{hw_cores} core(s)")
        if hw_cores and max_shards and hw_cores < max_shards:
            # Soft gate only: cp-speedup is the runner-independent
            # signal; wall-clock cannot scale past the core count.
            print(f"warning: runner has {hw_cores} core(s) but the sweep "
                  f"reaches {max_shards} shards -- wall-clock speedups "
                  f"are core-starved and not gated")
        profiler = scaling.get("profiler")
        if profiler is not None:
            # Soft-reported: the overhead is measured as a median of
            # paired wall-clock trials, but on a noisy shared runner even
            # that can swing by several percent, so the <= 5% acceptance
            # bar is tracked here rather than hard-gated.
            overhead = profiler.get("overhead_pct", 0.0)
            print(f"profiler overhead at {profiler.get('hosts', '?')} "
                  f"hosts / {profiler.get('shards', '?')} shards: "
                  f"{overhead:+.2f}% events/sec "
                  f"(target <= 5%; median of paired trials)")
        if args.baseline_check:
            if not parity:
                sys.exit("baseline check FAILED: delivered work changed "
                         "with shard count (rack_scaling parity)")
            if cp_speedup < cp_floor:
                sys.exit(f"baseline check FAILED: critical-path speedup "
                         f"{cp_speedup:.2f}x below {cp_floor}x")

    rack = entry["benchmarks"].get("rack_fig6b", {})
    wheel = rack.get("timer_wheel", {}).get("events_per_sec", 0.0)
    if entry.get("smoke"):
        # The recorded pre-PR baseline was measured on the full workload,
        # where fixed warmup/setup costs amortize; the smoke workload is an
        # order of magnitude shorter and not comparable in absolute
        # events/sec. Gate smoke runs on the same-run legacy-heap leg
        # instead: a sanity floor that catches the wheel being disabled or
        # badly regressed, while the 3x absolute claim stays a full-run
        # check.
        heap = rack.get("legacy_heap", {}).get("events_per_sec", 0.0)
        if heap:
            ratio = wheel / heap
            print(f"rack events/sec (smoke): wheel {wheel:,.0f} vs "
                  f"legacy heap {heap:,.0f} -> {ratio:.2f}x "
                  f"(smoke floor >= 1.15x; run without --smoke for the "
                  f"3x pre-PR gate)")
            if args.baseline_check and ratio < 1.15:
                sys.exit("baseline check FAILED: smoke speedup vs "
                         "legacy heap below 1.15x")
        return
    baseline = history.get("pre_pr_baseline", {}).get("events_per_sec")
    baseline_name = "recorded pre-PR baseline"
    if baseline is None:
        baseline = rack.get("legacy_heap", {}).get("events_per_sec", 0.0)
        baseline_name = "legacy-heap leg of this run"
    if baseline:
        ratio = wheel / baseline
        print(f"rack events/sec: wheel {wheel:,.0f} vs {baseline_name} "
              f"{baseline:,.0f} -> {ratio:.2f}x (target >= 3x)")
        if args.baseline_check and ratio < 3.0:
            sys.exit("baseline check FAILED: speedup below 3x")


if __name__ == "__main__":
    main()
