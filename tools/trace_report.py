#!/usr/bin/env python3
"""Latency-breakdown report over a flight-recorder trace.

Usage:
    tools/trace_report.py TRACE.json [--top N] [--check]

Reads a Chrome-trace-event JSON written by TraceRecorder (bench_sim_speed
--trace, or any test that calls WriteJson) and prints:
  - per-engine CPU share: total "poll" slice time per engine, as absolute
    time and as a share of all polling (the Fig. 5 attribution view);
  - per-core utilization from "task" slices;
  - top async spans by duration (upgrade brownout/blackout phases,
    Gilbert-Elliott bad-state bursts), plus per-name totals — the upgrade
    section reports the blackout durations the paper's Section 4 measures;
  - sampled message-lifecycle summary: flow point counts per stage and
    end-to-end latency percentiles for flows that completed;
  - per-tenant QoS admission rollup: qos_admission_block/unblock instants
    are edge-triggered per tenant, so consecutive pairs are throttle
    episodes; reports episode count and total/max throttled time;
  - sharded-engine profiler rollup: prof/epoch_events counters (track 905
    + shard * 100000 in a merged sharded trace) give per-shard event
    share and the worst/best shard ratio, prof/epoch_imbalance_pct gives
    the per-epoch imbalance distribution (100 = perfectly balanced);
  - tenant SLO alerts: slo_fire:/slo_clear: instants on track 904 with
    their burn rates at the transition.

--check exits nonzero unless the trace is structurally sound: parses as
JSON, timestamps non-negative, complete events have non-negative
durations, every async end has a matching begin, every sampled flow
('s'/'t'/'f' events sharing an id) starts with 's', per-tenant QoS
admission instants alternate block/unblock, profiler counters are
positive with imbalance >= 100, and SLO alerts alternate fire/clear per
tenant+kind. CI smoke-runs this over a tiny traced rack run.

Only the standard library is used.
"""

import argparse
import json
import sys
from collections import defaultdict

# Virtual tracks from TraceRecorder (src/stats/trace.h). A merged sharded
# trace remaps shard s's events to tid + s * SHARD_STRIDE
# (ShardedSim::kShardTrackStride), so tid % SHARD_STRIDE recovers the
# track and tid // SHARD_STRIDE the shard.
SLO_TRACK = 904
PROFILER_TRACK = 905
SHARD_STRIDE = 100000


def track_of(tid):
    return tid % SHARD_STRIDE, tid // SHARD_STRIDE


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("no traceEvents array")
    return events


def fmt_us(us):
    if us >= 1e6:
        return "%.3f s" % (us / 1e6)
    if us >= 1e3:
        return "%.3f ms" % (us / 1e3)
    return "%.3f us" % us


def percentile(sorted_values, p):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(p / 100.0 * len(sorted_values)))
    return sorted_values[index]


def report(events, top_n):
    # --- Per-engine CPU share from "poll" complete events. ---
    poll_time = defaultdict(float)     # engine name -> total us
    task_time = defaultdict(float)     # tid -> total us
    span_end = 0.0
    for e in events:
        span_end = max(span_end, e.get("ts", 0) + e.get("dur", 0))
        if e.get("ph") == "X":
            if e.get("cat") == "poll":
                poll_time[e["name"]] += e.get("dur", 0)
            elif e.get("cat") == "task":
                task_time[e.get("tid", 0)] += e.get("dur", 0)

    total_poll = sum(poll_time.values())
    print("== Per-engine CPU (poll slices) ==")
    if total_poll == 0:
        print("  (no poll events)")
    for name, us in sorted(poll_time.items(), key=lambda kv: -kv[1])[:top_n]:
        print("  %-40s %12s  %5.1f%%" %
              (name, fmt_us(us), 100.0 * us / total_poll))
    if len(poll_time) > top_n:
        print("  ... and %d more engines" % (len(poll_time) - top_n))

    print("\n== Per-core busy time (task slices) ==")
    for tid in sorted(task_time):
        us = task_time[tid]
        share = 100.0 * us / span_end if span_end > 0 else 0.0
        print("  core %-3d %12s busy  %5.1f%% of trace span" %
              (tid, fmt_us(us), share))

    # --- Async spans (brownout/blackout, chaos bursts). ---
    opens = {}                       # (name, id) -> begin ts
    spans = defaultdict(list)        # name -> [duration us]
    longest = []                     # (dur, name, begin)
    for e in events:
        ph = e.get("ph")
        if ph == "b":
            opens[(e["name"], e.get("id"))] = e.get("ts", 0)
        elif ph == "e":
            key = (e["name"], e.get("id"))
            begin = opens.pop(key, None)
            if begin is not None:
                dur = e.get("ts", 0) - begin
                spans[e["name"]].append(dur)
                longest.append((dur, e["name"], begin))
    print("\n== Async spans ==")
    if not spans:
        print("  (none)")
    for name in sorted(spans):
        durations = sorted(spans[name])
        print("  %-16s count %-5d total %12s  max %12s" %
              (name, len(durations), fmt_us(sum(durations)),
               fmt_us(durations[-1])))
    for dur, name, begin in sorted(longest, reverse=True)[:top_n]:
        print("    longest: %-16s %12s at ts=%s" %
              (name, fmt_us(dur), fmt_us(begin)))

    # --- Sampled message lifecycles. ---
    stage_counts = defaultdict(int)
    flow_first = {}
    flow_last = {}
    flow_done = set()
    for e in events:
        ph = e.get("ph")
        if ph not in ("s", "t", "f"):
            continue
        stage = (e.get("args") or {}).get("point", "?")
        stage_counts[stage] += 1
        fid = e.get("id")
        ts = e.get("ts", 0)
        if ph == "s":
            flow_first.setdefault(fid, ts)
        flow_last[fid] = ts
        if ph == "f":
            flow_done.add(fid)
    print("\n== Sampled message lifecycles ==")
    if not stage_counts:
        print("  (no packet-lifecycle events; sampling off or compiled out)")
    for stage in sorted(stage_counts, key=lambda s: -stage_counts[s]):
        print("  %-16s %8d points" % (stage, stage_counts[stage]))
    latencies = sorted(flow_last[f] - flow_first[f]
                       for f in flow_done if f in flow_first)
    if latencies:
        print("  completed flows: %d   latency p50 %s  p99 %s  max %s" %
              (len(latencies), fmt_us(percentile(latencies, 50)),
               fmt_us(percentile(latencies, 99)), fmt_us(latencies[-1])))

    # --- Per-tenant QoS admission throttling. ---
    # qos_admission_block/unblock instants are edge-triggered per tenant,
    # so a block followed by the tenant's next unblock is one throttle
    # episode. A block still open at trace end counts against the span end.
    episodes = defaultdict(list)     # tenant -> [episode us]
    open_block = {}                  # tenant -> block ts
    for e in events:
        if e.get("ph") != "i":
            continue
        name = e.get("name")
        if name not in ("qos_admission_block", "qos_admission_unblock"):
            continue
        tenant = (e.get("args") or {}).get("tenant", "?")
        ts = e.get("ts", 0)
        if name == "qos_admission_block":
            open_block.setdefault(tenant, ts)
        else:
            begin = open_block.pop(tenant, None)
            if begin is not None:
                episodes[tenant].append(ts - begin)
    for tenant, begin in open_block.items():
        episodes[tenant].append(span_end - begin)
    print("\n== QoS admission throttling (per tenant) ==")
    if not episodes:
        print("  (no qos admission events; QoS admission off or unthrottled)")
    for tenant in sorted(episodes):
        durs = episodes[tenant]
        still_open = " (1 open at trace end)" if tenant in open_block else ""
        print("  tenant %-6s %6d episodes  total %12s  max %12s%s" %
              (tenant, len(durs), fmt_us(sum(durs)), fmt_us(max(durs)),
               still_open))

    # --- Sharded-engine profiler counters. ---
    shard_events = defaultdict(int)   # shard -> sum of epoch event deltas
    shard_epochs = defaultdict(int)   # shard -> epochs with events
    imbalance = []                    # per-epoch imbalance_pct samples
    for e in events:
        if e.get("ph") != "C":
            continue
        track, shard = track_of(e.get("tid", 0))
        if track != PROFILER_TRACK:
            continue
        value = (e.get("args") or {}).get("value", 0)
        if e.get("name") == "prof/epoch_events":
            shard_events[shard] += value
            shard_epochs[shard] += 1
        elif e.get("name") == "prof/epoch_imbalance_pct":
            imbalance.append(value)
    print("\n== Sharded-engine profiler (per-shard epoch counters) ==")
    if not shard_events:
        print("  (no prof/ counters; profiling or tracing off)")
    else:
        total_events = sum(shard_events.values())
        for shard in sorted(shard_events):
            ev = shard_events[shard]
            print("  shard %-3d %10d events  %5.1f%% of work  "
                  "%8d active epochs" %
                  (shard, ev, 100.0 * ev / total_events,
                   shard_epochs[shard]))
        busiest = max(shard_events.values())
        idlest = min(shard_events.values())
        if idlest > 0:
            print("  worst/best shard ratio: %.2fx" % (busiest / idlest))
        if imbalance:
            imbalance.sort()
            print("  epoch imbalance pct: p50 %d  p99 %d  max %d  "
                  "(100 = balanced)" %
                  (percentile(imbalance, 50), percentile(imbalance, 99),
                   imbalance[-1]))

    # --- Live scheduler (park/wake/migrate instants, track 900 + worker
    # stride in a merged live trace). ---
    sched = [e for e in events
             if e.get("ph") == "i" and
             e.get("name") in ("exec_park", "exec_wake", "engine_migrate")]
    print("\n== Live scheduler (park/wake/migrate instants) ==")
    if not sched:
        print("  (no scheduler instants; not a traced live run)")
    else:
        parks = defaultdict(int)
        wakes = defaultdict(int)
        migrations = []
        for e in sched:
            tid = e.get("tid", 0)
            if e["name"] == "exec_park":
                parks[tid] += 1
            elif e["name"] == "exec_wake":
                wakes[tid] += 1
            else:
                migrations.append(e)
        for tid in sorted(set(parks) | set(wakes)):
            print("  track %-10d %8d parks  %8d wakes" %
                  (tid, parks[tid], wakes[tid]))
        print("  %d migrations" % len(migrations))
        for e in migrations[:top_n]:
            args = e.get("args") or {}
            print("    %12s  exec %s: worker %s -> %s" %
                  (fmt_us(e.get("ts", 0)), args.get("exec", "?"),
                   args.get("from", "?"), args.get("to", "?")))
        if len(migrations) > top_n:
            print("    ... and %d more" % (len(migrations) - top_n))

    # --- Tenant SLO alerts. ---
    slo = [e for e in events
           if e.get("ph") == "i" and
           track_of(e.get("tid", 0))[0] == SLO_TRACK]
    print("\n== Tenant SLO alerts ==")
    if not slo:
        print("  (no SLO instants; no SloMonitor attached to the trace)")
    for e in slo[:top_n]:
        burn = e.get("args") or {}
        print("  %12s  %-40s fast %7.2fx  slow %7.2fx" %
              (fmt_us(e.get("ts", 0)), e.get("name", "?"),
               burn.get("fast_milli", 0) / 1000.0,
               burn.get("slow_milli", 0) / 1000.0))
    if len(slo) > top_n:
        print("  ... and %d more alerts" % (len(slo) - top_n))


def check(events):
    """Structural validation; returns a list of problem strings."""
    problems = []
    opens = set()
    # Flow starts are collected up front: live traces stamp events with
    # the executor's pass-start time, so a receiver's 'f' can sort before
    # the sender's 's' by up to a pass — presence is the invariant, not
    # file order.
    flow_started = {e.get("id") for e in events if e.get("ph") == "s"}
    admission_blocked = set()        # tenants currently in a blocked episode
    slo_firing = {}                  # (tenant, kind) -> currently firing
    parked = {}                      # tid -> currently parked (live sched)
    for i, e in enumerate(events):
        ph = e.get("ph")
        if "name" not in e or ph is None:
            problems.append("event %d: missing name/ph" % i)
            continue
        if e.get("ts", 0) < 0:
            problems.append("event %d (%s): negative ts" % (i, e["name"]))
        if ph == "X" and e.get("dur", 0) < 0:
            problems.append("event %d (%s): negative dur" % (i, e["name"]))
        if ph == "b":
            opens.add((e["name"], e.get("id")))
        elif ph == "e":
            key = (e["name"], e.get("id"))
            if key not in opens:
                problems.append("event %d: async end without begin: %s/%s" %
                                (i, e["name"], e.get("id")))
            else:
                opens.discard(key)
        elif ph == "f":
            # 't' points without an 's' are legal (sampled one-sided ops
            # have no message-enqueue), but a completion delivery is always
            # preceded by the sender's app_enqueue in the same trace.
            if e.get("id") not in flow_started:
                problems.append("event %d: flow end without 's' start: %s" %
                                (i, e.get("id")))
        elif ph == "i" and e["name"] in ("qos_admission_block",
                                         "qos_admission_unblock"):
            tenant = (e.get("args") or {}).get("tenant", "?")
            if e["name"] == "qos_admission_block":
                if tenant in admission_blocked:
                    problems.append(
                        "event %d: double qos_admission_block for tenant %s"
                        % (i, tenant))
                admission_blocked.add(tenant)
            else:
                if tenant not in admission_blocked:
                    problems.append(
                        "event %d: qos_admission_unblock without block for "
                        "tenant %s" % (i, tenant))
                admission_blocked.discard(tenant)
        elif ph == "i" and (e["name"].startswith("slo_fire:") or
                            e["name"].startswith("slo_clear:")):
            firing = e["name"].startswith("slo_fire:")
            key = e["name"].split(":", 1)[1]   # "<tenant>/<kind>"
            if slo_firing.get(key, False) == firing:
                problems.append(
                    "event %d: SLO alert %s repeats state (fire/clear must "
                    "alternate)" % (i, e["name"]))
            slo_firing[key] = firing
        elif ph == "i" and e["name"] in ("exec_park", "exec_wake"):
            # Live scheduler workers: a park instant precedes the doorbell
            # wait and its wake follows the same wait, so per worker track
            # the two strictly alternate starting with a park.
            tid = e.get("tid", 0)
            if e["name"] == "exec_park":
                if parked.get(tid, False):
                    problems.append(
                        "event %d: exec_park while parked (tid %d)" %
                        (i, tid))
                parked[tid] = True
            else:
                if not parked.get(tid, False):
                    problems.append(
                        "event %d: exec_wake without exec_park (tid %d)" %
                        (i, tid))
                parked[tid] = False
        elif ph == "i" and e["name"] == "engine_migrate":
            args = e.get("args") or {}
            if not all(k in args for k in ("exec", "from", "to")):
                problems.append(
                    "event %d: engine_migrate missing exec/from/to args" % i)
            elif args["from"] == args["to"]:
                problems.append(
                    "event %d: engine_migrate with from == to (%s)" %
                    (i, args["from"]))
        elif ph == "C" and track_of(e.get("tid", 0))[0] == PROFILER_TRACK:
            value = (e.get("args") or {}).get("value", 0)
            if e["name"] == "prof/epoch_events" and value <= 0:
                # Zero-delta epochs are suppressed at emission; a
                # non-positive sample means the emitter broke.
                problems.append(
                    "event %d: non-positive prof/epoch_events %d" %
                    (i, value))
            elif e["name"] == "prof/epoch_imbalance_pct" and value < 100:
                # max/total*n*100 >= 100 by construction (max >= mean).
                problems.append(
                    "event %d: prof/epoch_imbalance_pct %d < 100" %
                    (i, value))
    # Open async spans (or a blocked tenant) at trace end are legal (e.g. a
    # chaos bad state when the run stops) — only report them, don't fail.
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="TraceRecorder JSON file")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per section (default 10)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero on structural problems")
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print("trace_report: cannot read %s: %s" % (args.trace, err),
              file=sys.stderr)
        return 2

    print("trace: %s (%d events)\n" % (args.trace, len(events)))
    report(events, args.top)

    if args.check:
        problems = check(events)
        if problems:
            print("\nCHECK FAILED: %d problems" % len(problems),
                  file=sys.stderr)
            for p in problems[:20]:
                print("  " + p, file=sys.stderr)
            return 1
        print("\ncheck: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
