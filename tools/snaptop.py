#!/usr/bin/env python3
"""snaptop: terminal dashboard over the engine profiler and SLO monitor.

Usage:
    tools/snaptop.py [--profile PROF.json] [--slo SLO.json]
                     [--telemetry TELEM.json] [--live-profile SCHED.json]
                     [--follow SECONDS] [--width N] [--check]

Renders, from whichever inputs are given:
  - per-shard busy/wait bars from a ShardedSim::ProfileJson() file
    (bench_sim_speed --profile): wall-clock busy share per shard, event
    counts, the busiest single epoch, and the engine-level epoch /
    exchange totals — the at-a-glance view of how well the conservative
    sync engine is keeping its shards fed;
  - tenant SLO burn-rate gauges from an SloMonitor::SnapshotJson() file:
    fast/slow-window burn (in units of the error budget) per tenant for
    latency and goodput, FIRING markers, and the alert log;
  - optional deterministic profiler counters from a Telemetry
    SnapshotJson() (sim/shard/<s>/* and net/shard/<d>/* keys) when no
    wall-clock profile is available;
  - live scheduler view from a LiveScheduler::ProfileJson() file
    (live_node --profile-out, or LiveScheduler::EnableProfileDump):
    scheduling mode, per-worker busy/park split with engine placement,
    per-engine load signals (busy, queueing delay vs the 40 us SLO), and
    the migration count.

Sim inputs are static renders of snapshot files. The live scheduler
dumps its profile periodically while running (atomic rename), so
--follow N re-reads and re-renders the --live-profile file every N
seconds until the run stops updating it (or Ctrl-C) — the actual "top"
loop. Only the standard library is used.

--check exits nonzero unless every given input parses and is internally
consistent (shard counts match array lengths, burn values non-negative,
alerts alternate fire/clear per tenant+kind, worker placement arrays
consistent with executor owners). CI smoke-runs this over the bench
profiler output and the live-multiproc scheduler profile.
"""

import argparse
import json
import sys
import time


def fmt_ns(ns):
    if ns >= 1e9:
        return "%.2f s" % (ns / 1e9)
    if ns >= 1e6:
        return "%.2f ms" % (ns / 1e6)
    if ns >= 1e3:
        return "%.2f us" % (ns / 1e3)
    return "%d ns" % ns


def bar(fraction, width):
    fraction = max(0.0, min(1.0, fraction))
    full = int(round(fraction * width))
    return "#" * full + "." * (width - full)


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def render_profile(prof, width):
    print("== Shard profile (wall clock) ==")
    if not prof.get("enabled", False):
        print("  profiling was not enabled for this run")
        return
    shards = prof.get("shards", [])
    n = len(shards)
    epochs = prof.get("epochs", 0)
    events = prof.get("events_fired", 0)
    cp = prof.get("critical_path_events", 0)
    print("  %d shards, %d worker threads, %d epochs, %d events"
          % (prof.get("num_shards", n), prof.get("num_threads", 0),
             epochs, events))
    if cp > 0:
        print("  critical path %d events -> ideal speedup %.2fx"
              % (cp, events / cp))
    print("  epoch wall %s, exchange wall %s"
          % (fmt_ns(prof.get("epoch_wall_ns", 0)),
             fmt_ns(prof.get("exchange_wall_ns", 0))))
    print()
    print("  shard    busy%  " + "busy".ljust(width) +
          "      busy wall      events  max/epoch")
    for s, sp in enumerate(shards):
        busy = sp.get("busy_ns", 0)
        wait = sp.get("wait_ns", 0)
        total = busy + wait
        frac = busy / total if total > 0 else 0.0
        print("  %5d  %5.1f%%  [%s]  %12s  %10d  %9d"
              % (s, 100.0 * frac, bar(frac, width - 2), fmt_ns(busy),
                 sp.get("events", 0), sp.get("max_epoch_events", 0)))
    busiest = max(shards, key=lambda sp: sp.get("events", 0), default=None)
    idlest = min(shards, key=lambda sp: sp.get("events", 0), default=None)
    if busiest and idlest and idlest.get("events", 0) > 0:
        print("  event imbalance: busiest/idlest shard = %.2fx"
              % (busiest["events"] / idlest["events"]))
    elif busiest and busiest.get("events", 0) > 0:
        print("  event imbalance: some shards ran no events "
              "(placement left them empty)")


def render_telemetry(telem, width):
    """Deterministic profiler counters out of a Telemetry SnapshotJson."""
    counters = telem.get("counters", telem if isinstance(telem, dict) else {})
    shard_events = {}
    shard_epochs = {}
    handoff_in = {}
    for name, value in counters.items():
        parts = name.split("/")
        if name.startswith("sim/shard/") and len(parts) == 4:
            if parts[3] == "epoch_events":
                shard_events[int(parts[2])] = value
            elif parts[3] == "epochs":
                shard_epochs[int(parts[2])] = value
        elif name.startswith("net/shard/") and len(parts) == 4:
            if parts[3] == "handoff_in":
                handoff_in[int(parts[2])] = value
    if not shard_events:
        return
    print("== Shard events (deterministic counters) ==")
    peak = max(shard_events.values())
    for s in sorted(shard_events):
        ev = shard_events[s]
        frac = ev / peak if peak > 0 else 0.0
        extra = ""
        if s in handoff_in:
            extra = "  %10d handoffs-in" % handoff_in[s]
        print("  %5d  [%s]  %10d events  %8d epochs%s"
              % (s, bar(frac, width - 2), ev, shard_epochs.get(s, 0), extra))


def render_live_profile(prof, width):
    print("== Live scheduler (%s mode) ==" % prof.get("mode", "?"))
    if not prof.get("enabled", False):
        print("  scheduler was not running")
        return
    workers = prof.get("workers", [])
    print("  %d workers, %d engines, SLO %s, %d migrations"
          % (prof.get("num_workers", len(workers)),
             prof.get("num_executors", 0),
             fmt_ns(prof.get("slo_ns", 0)), prof.get("migrations", 0)))
    print()
    print("  worker   busy%  " + "busy".ljust(width) +
          "      busy wall      passes     parks  engines")
    for w, wp in enumerate(workers):
        busy = wp.get("busy_ns", 0)
        park = wp.get("park_ns", 0)
        total = busy + park
        frac = busy / total if total > 0 else 0.0
        engines = ",".join(str(e) for e in wp.get("executors", []))
        print("  %6d  %5.1f%%  [%s]  %12s  %10d  %8d  [%s]"
              % (w, 100.0 * frac, bar(frac, width - 2), fmt_ns(busy),
                 wp.get("passes", 0), wp.get("parks", 0), engines))
    executors = prof.get("executors", [])
    if executors:
        slo = prof.get("slo_ns", 0)
        print()
        for e, ep in enumerate(executors):
            delay = ep.get("queue_delay_ns", 0)
            over = "  OVER SLO" if slo and delay > slo else ""
            print("  engine %-3d on worker %-3d  busy %12s  queue delay "
                  "%10s  %6d wakes%s"
                  % (e, ep.get("worker", -1), fmt_ns(ep.get("busy_ns", 0)),
                     fmt_ns(delay), ep.get("wakes", 0), over))


def check_live_profile(prof):
    problems = []
    if not prof.get("enabled", False):
        problems.append("live-profile: enabled is false")
        return problems
    if prof.get("mode") not in ("dedicated", "spreading", "compacting"):
        problems.append("live-profile: unknown mode %r" % prof.get("mode"))
    workers = prof.get("workers", [])
    if prof.get("num_workers") != len(workers):
        problems.append("live-profile: num_workers %s != len(workers) %d"
                        % (prof.get("num_workers"), len(workers)))
    executors = prof.get("executors", [])
    if prof.get("num_executors") != len(executors):
        problems.append(
            "live-profile: num_executors %s != len(executors) %d"
            % (prof.get("num_executors"), len(executors)))
    placed = []
    for w, wp in enumerate(workers):
        for key in ("busy_ns", "park_ns", "passes", "parks", "work_items"):
            if wp.get(key, 0) < 0:
                problems.append("live-profile: worker %d negative %s"
                                % (w, key))
        placed.extend(wp.get("executors", []))
    # Every engine sits on exactly one worker, and the worker lists agree
    # with the executors' own owner fields (a migration in flight shows
    # the engine on its destination in both views or neither — the dump
    # reads owner_ for both sides).
    if sorted(placed) != list(range(len(executors))):
        problems.append("live-profile: placement %r is not a partition of "
                        "%d engines" % (sorted(placed), len(executors)))
    for e, ep in enumerate(executors):
        w = ep.get("worker", -1)
        if not 0 <= w < len(workers):
            problems.append("live-profile: engine %d on bad worker %s"
                            % (e, w))
        elif e not in workers[w].get("executors", []):
            problems.append("live-profile: engine %d claims worker %d but "
                            "is not in its list" % (e, w))
        if prof.get("mode") == "spreading" and len(executors) == \
                len(workers) and w != e:
            problems.append("live-profile: spreading engine %d on worker %d"
                            % (e, w))
    if prof.get("mode") != "compacting" and prof.get("migrations", 0) != 0:
        problems.append("live-profile: %s mode reports migrations"
                        % prof.get("mode"))
    return problems


def burn_gauge(milli, threshold_milli, width):
    """Burn bar scaled so the firing threshold sits at 2/3 of the bar."""
    scale = threshold_milli * 1.5 if threshold_milli > 0 else 1.0
    return bar(milli / scale, width)


def render_slo(slo, width):
    print("== Tenant SLO burn rate ==")
    slot_ns = slo.get("slot_width_ns", 0)
    fast_n = slo.get("fast_window_slots", 0)
    slow_n = slo.get("slow_window_slots", 0)
    print("  slot %s, fast window %d slots, slow window %d slots"
          % (fmt_ns(slot_ns), fast_n, slow_n))
    tenants = slo.get("tenants", {})
    if not tenants:
        print("  (no tenants registered)")
    for name in sorted(tenants):
        t = tenants[name]
        rows = [("latency", t.get("fast_burn_milli", 0),
                 t.get("slow_burn_milli", 0), t.get("latency_firing", False))]
        if t.get("goodput_fast_milli", 0) or t.get("goodput_slow_milli", 0) \
                or t.get("goodput_firing", False):
            rows.append(("goodput", t.get("goodput_fast_milli", 0),
                         t.get("goodput_slow_milli", 0),
                         t.get("goodput_firing", False)))
        print("  tenant %-12s (%d closed slots)"
              % (name, t.get("closed_slots", 0)))
        for kind, fast, slow, firing in rows:
            state = " *** FIRING ***" if firing else ""
            print("    %-8s fast %7.2fx [%s]%s"
                  % (kind, fast / 1000.0, burn_gauge(fast, 14400, width - 2),
                     state))
            print("    %-8s slow %7.2fx [%s]"
                  % ("", slow / 1000.0, burn_gauge(slow, 6000, width - 2)))
    alerts = slo.get("alerts", [])
    print("\n== SLO alert log (%d events) ==" % len(alerts))
    for a in alerts:
        print("  %12s  %-7s %-8s fast %7.2fx slow %7.2fx  tenant %s"
              % (fmt_ns(a.get("at_ns", 0)),
                 "FIRE" if a.get("firing") else "clear",
                 a.get("kind", "?"), a.get("fast_milli", 0) / 1000.0,
                 a.get("slow_milli", 0) / 1000.0, a.get("tenant", "?")))


def check_profile(prof):
    problems = []
    if not prof.get("enabled", False):
        problems.append("profile: enabled is false")
        return problems
    shards = prof.get("shards", [])
    if prof.get("num_shards") != len(shards):
        problems.append("profile: num_shards %s != len(shards) %d"
                        % (prof.get("num_shards"), len(shards)))
    total_events = 0
    for s, sp in enumerate(shards):
        for key in ("busy_ns", "wait_ns", "events", "max_epoch_events"):
            if sp.get(key, 0) < 0:
                problems.append("profile: shard %d negative %s" % (s, key))
        if sp.get("max_epoch_events", 0) > sp.get("events", 0):
            problems.append("profile: shard %d max_epoch_events > events" % s)
        total_events += sp.get("events", 0)
    if total_events > prof.get("events_fired", 0):
        problems.append("profile: per-shard events %d exceed total %d"
                        % (total_events, prof.get("events_fired", 0)))
    if prof.get("critical_path_events", 0) > prof.get("events_fired", 0):
        problems.append("profile: critical path exceeds total events")
    return problems


def check_slo(slo):
    problems = []
    for name, t in slo.get("tenants", {}).items():
        for key in ("fast_burn_milli", "slow_burn_milli",
                    "goodput_fast_milli", "goodput_slow_milli"):
            if t.get(key, 0) < 0:
                problems.append("slo: tenant %s negative %s" % (name, key))
    # Alerts must alternate fire/clear per (tenant, kind), starting fired.
    firing = {}
    slot_ns = slo.get("slot_width_ns", 0)
    for i, a in enumerate(slo.get("alerts", [])):
        key = (a.get("tenant"), a.get("kind"))
        if a.get("firing") == firing.get(key, False):
            problems.append("slo: alert %d repeats state %s for %s"
                            % (i, a.get("firing"), key))
        firing[key] = a.get("firing")
        if slot_ns > 0 and a.get("at_ns", 0) % slot_ns != 0:
            problems.append("slo: alert %d not on a slot boundary" % i)
    return problems


def follow(path, interval, width):
    """Poll a periodically-dumped live scheduler profile, top-style.

    Exits cleanly once the file stops changing (the run finished its
    final dump) or on Ctrl-C. Missing/partial files are retried: the
    dumper renames into place atomically, but the run may not have
    started yet.
    """
    last = None
    stale_polls = 0
    try:
        while True:
            try:
                raw = open(path, "r", encoding="utf-8").read()
                doc = json.loads(raw)
            except (OSError, ValueError, json.JSONDecodeError):
                raw, doc = None, None
            if raw is not None and raw != last:
                last = raw
                stale_polls = 0
                print("\n--- %s ---" % time.strftime("%H:%M:%S"))
                render_live_profile(doc, width)
            elif last is not None:
                stale_polls += 1
                if stale_polls >= 3:
                    print("\n(profile stopped updating; run finished)")
                    return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", help="ShardedSim ProfileJson file")
    parser.add_argument("--slo", help="SloMonitor SnapshotJson file")
    parser.add_argument("--telemetry",
                        help="Telemetry SnapshotJson file (counters only)")
    parser.add_argument("--live-profile",
                        help="LiveScheduler ProfileJson file")
    parser.add_argument("--follow", type=float, metavar="SECONDS",
                        help="re-render --live-profile every SECONDS while "
                             "the run keeps updating it")
    parser.add_argument("--width", type=int, default=40,
                        help="bar width in characters (default 40)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero on inconsistent inputs")
    args = parser.parse_args()
    if not (args.profile or args.slo or args.telemetry or
            args.live_profile):
        parser.error("give at least one of --profile, --slo, --telemetry, "
                     "--live-profile")
    if args.follow and not args.live_profile:
        parser.error("--follow needs --live-profile")

    if args.follow:
        return follow(args.live_profile, args.follow, args.width)

    problems = []
    first = True
    for path, loader, checker in (
            (args.profile, render_profile, check_profile),
            (args.telemetry, render_telemetry, None),
            (args.live_profile, render_live_profile, check_live_profile),
            (args.slo, render_slo, check_slo)):
        if not path:
            continue
        try:
            doc = load(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print("snaptop: cannot read %s: %s" % (path, err),
                  file=sys.stderr)
            return 2
        if not first:
            print()
        first = False
        loader(doc, args.width)
        if args.check and checker is not None:
            problems.extend(checker(doc))

    if args.check:
        if problems:
            print("\nCHECK FAILED: %d problems" % len(problems),
                  file=sys.stderr)
            for p in problems[:20]:
                print("  " + p, file=sys.stderr)
            return 1
        print("\ncheck: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
