#!/usr/bin/env python3
"""Launch a cross-process live rack and merge its artifacts.

Usage:
    tools/live_multiproc.py --nodes N [--live-node PATH]
                            [--mode MODE] [--iterations I] [--bytes B]
                            [--window W] [--blocking]
                            [--hosts-per-node H] [--deadline-sec S]
                            [--out-dir DIR]

Starts N live_node processes on this machine, one rack host per node by
default (--hosts-per-node packs more). Node 0 serves the rendezvous
directory on a freshly allocated UDP port; every node gets
--directory 127.0.0.1:PORT and they discover each other's data sockets
through the ANNOUNCE/TABLE/ACK handshake — no endpoint is configured
anywhere in this script, which is the point: the same flow works across
machines by pointing --directory somewhere routable.

Each node writes its per-node summary/telemetry/trace JSON into
--out-dir; after all nodes exit the script merges them:
  - summary.json: per-node results plus rack-level RPC totals,
  - telemetry.json: counter sum across the nodes' telemetry snapshots,
  - trace.json: all nodes' Chrome traces concatenated, node n's tracks
    offset by n * NODE_STRIDE so they stay distinct in a viewer and in
    tools/trace_report.py. Per-node timestamps are re-based onto one
    timeline using each runtime's published epoch_ns (the nodes share
    CLOCK_MONOTONIC on one machine), so cross-process message flows
    keep their send-before-deliver order.

Exit status is the CI gate: nonzero if any node exits nonzero, times
out, or the merged RPC count misses nodes * hosts_per_node * iterations.
Only the standard library is used.
"""

import argparse
import json
import os
import socket
import subprocess
import sys

# Per-node track offset in the merged trace: one LiveRuntime already
# spreads hosts/workers kHostTrackStride (100000) apart, so nodes get a
# stride two orders above that.
NODE_STRIDE = 10_000_000


def free_udp_port():
    s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def node_args(args, node, port, out_dir):
    hosts = range(node * args.hosts_per_node,
                  (node + 1) * args.hosts_per_node)
    argv = [
        args.live_node,
        "--num-hosts", str(args.nodes * args.hosts_per_node),
        "--local-hosts", ",".join(str(h) for h in hosts),
        "--directory", "127.0.0.1:%d" % port,
        "--mode", args.mode,
        "--iterations", str(args.iterations),
        "--bytes", str(args.bytes),
        "--window", str(args.window),
        "--deadline-sec", str(args.deadline_sec),
        "--json", os.path.join(out_dir, "node%d.json" % node),
        "--telemetry-out", os.path.join(out_dir,
                                        "node%d_telemetry.json" % node),
        "--trace-out", os.path.join(out_dir, "node%d_trace.json" % node),
    ]
    if node == 0:
        argv.append("--serve-directory")
        argv += ["--profile-out",
                 os.path.join(out_dir, "node0_profile.json")]
    if args.blocking:
        argv.append("--blocking")
    return argv


def merge_summaries(args, out_dir, exit_codes):
    nodes = []
    total_rpcs = 0
    ok = all(code == 0 for code in exit_codes)
    for node in range(args.nodes):
        path = os.path.join(out_dir, "node%d.json" % node)
        try:
            with open(path, "r", encoding="utf-8") as f:
                summary = json.load(f)
        except (OSError, ValueError):
            ok = False
            nodes.append({"node": node, "exit": exit_codes[node],
                          "error": "no summary"})
            continue
        summary["node"] = node
        summary["exit"] = exit_codes[node]
        ok = ok and summary.get("ok", False)
        for host in summary.get("hosts", {}).values():
            total_rpcs += host.get("pongs_received", 0)
        nodes.append(summary)
    expected = args.nodes * args.hosts_per_node * args.iterations
    ok = ok and total_rpcs == expected
    merged = {
        "ok": ok,
        "nodes": args.nodes,
        "hosts_per_node": args.hosts_per_node,
        "mode": args.mode,
        "blocking": args.blocking,
        "total_rpcs": total_rpcs,
        "expected_rpcs": expected,
        "node_results": nodes,
    }
    with open(os.path.join(out_dir, "summary.json"), "w",
              encoding="utf-8") as f:
        json.dump(merged, f, indent=2)
    return merged


def merge_telemetry(args, out_dir):
    counters = {}
    for node in range(args.nodes):
        path = os.path.join(out_dir, "node%d_telemetry.json" % node)
        try:
            with open(path, "r", encoding="utf-8") as f:
                snapshot = json.load(f)
        except (OSError, ValueError):
            continue
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
    with open(os.path.join(out_dir, "telemetry.json"), "w",
              encoding="utf-8") as f:
        json.dump({"counters": counters}, f, indent=2, sort_keys=True)
    return counters


def merge_traces(args, out_dir):
    # Each node's trace timestamps count from its own runtime epoch; the
    # summaries publish the epochs (same CLOCK_MONOTONIC), so shifting by
    # epoch - min(epoch) puts every node on one comparable timeline.
    epochs = {}
    for node in range(args.nodes):
        path = os.path.join(out_dir, "node%d.json" % node)
        try:
            with open(path, "r", encoding="utf-8") as f:
                epochs[node] = json.load(f).get("epoch_ns", 0)
        except (OSError, ValueError):
            epochs[node] = 0
    base = min(epochs.values()) if epochs else 0
    events = []
    for node in range(args.nodes):
        path = os.path.join(out_dir, "node%d_trace.json" % node)
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError):
            continue
        shift_us = (epochs.get(node, 0) - base) / 1000.0
        for event in doc.get("traceEvents", []):
            if "tid" in event:
                event["tid"] += node * NODE_STRIDE
            if "ts" in event:
                event["ts"] += shift_us
            events.append(event)
    events.sort(key=lambda e: e.get("ts", 0))
    with open(os.path.join(out_dir, "trace.json"), "w",
              encoding="utf-8") as f:
        json.dump({"traceEvents": events}, f)
    return len(events)


def main():
    parser = argparse.ArgumentParser(
        description="launch N live_node processes and merge the results")
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--hosts-per-node", type=int, default=1)
    parser.add_argument("--live-node", default="build/src/live/live_node")
    parser.add_argument("--mode", default="dedicated",
                        choices=["dedicated", "spreading", "compacting"])
    parser.add_argument("--iterations", type=int, default=1000)
    parser.add_argument("--bytes", type=int, default=64)
    parser.add_argument("--window", type=int, default=4)
    parser.add_argument("--blocking", action="store_true")
    parser.add_argument("--deadline-sec", type=int, default=120)
    parser.add_argument("--out-dir", default="live_multiproc_out")
    args = parser.parse_args()
    if args.nodes < 2:
        parser.error("--nodes must be >= 2 (that is the cross-process part)")
    if args.nodes * args.hosts_per_node < 2:
        parser.error("need at least 2 rack hosts")

    os.makedirs(args.out_dir, exist_ok=True)
    port = free_udp_port()
    print("directory 127.0.0.1:%d, %d nodes x %d hosts, mode=%s%s"
          % (port, args.nodes, args.hosts_per_node, args.mode,
             " blocking" if args.blocking else ""))

    procs = []
    for node in range(args.nodes):
        argv = node_args(args, node, port, args.out_dir)
        log = open(os.path.join(args.out_dir, "node%d.log" % node), "w",
                   encoding="utf-8")
        procs.append((subprocess.Popen(argv, stdout=log, stderr=log), log))

    exit_codes = []
    # Deadline + rendezvous + shutdown margin; the nodes themselves give
    # up at --deadline-sec, so this only fires on a hang.
    join_timeout = args.deadline_sec + 60
    for node, (proc, log) in enumerate(procs):
        try:
            exit_codes.append(proc.wait(timeout=join_timeout))
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            exit_codes.append(-1)
        log.close()

    merged = merge_summaries(args, args.out_dir, exit_codes)
    counters = merge_telemetry(args, args.out_dir)
    num_events = merge_traces(args, args.out_dir)

    for node_result in merged["node_results"]:
        status = "ok" if node_result.get("ok") else "FAIL"
        print("node %d: exit %d %s wall %.3fs"
              % (node_result["node"], node_result["exit"], status,
                 node_result.get("wall_sec", 0.0)))
    print("rack rpcs %d/%d, %d merged counters, %d trace events"
          % (merged["total_rpcs"], merged["expected_rpcs"], len(counters),
             num_events))
    print("artifacts in %s" % args.out_dir)
    if not merged["ok"]:
        for node in range(args.nodes):
            log_path = os.path.join(args.out_dir, "node%d.log" % node)
            sys.stderr.write("---- %s ----\n" % log_path)
            try:
                with open(log_path, "r", encoding="utf-8") as f:
                    sys.stderr.write(f.read())
            except OSError:
                pass
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
