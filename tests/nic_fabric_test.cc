// NIC + fabric tests: delivery, steering, ring overflow, interrupt
// moderation, TX descriptor backpressure, port-queue congestion and drops.
#include <gtest/gtest.h>

#include "src/net/fabric.h"

namespace snap {
namespace {

class NicFabricTest : public ::testing::Test {
 protected:
  NicFabricTest() : sim_(1), fabric_(&sim_, params_) {}

  PacketPtr MakePacket(int src, int dst, int payload = 1000,
                       uint32_t steering = 0) {
    auto p = std::make_unique<Packet>();
    p->src_host = src;
    p->dst_host = dst;
    p->payload_bytes = payload;
    p->wire_bytes = payload + 64;
    p->steering_hash = steering;
    return p;
  }

  NicParams params_;
  Simulator sim_;
  Fabric fabric_;
};

TEST_F(NicFabricTest, DeliversBetweenHosts) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  ASSERT_TRUE(a->Transmit(MakePacket(0, 1)));
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(b->stats().rx_packets, 1);
  EXPECT_EQ(b->default_queue()->pending(), 1);
  PacketPtr p = b->default_queue()->Poll();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->src_host, 0);
  EXPECT_GT(p->rx_time, 0);
}

TEST_F(NicFabricTest, DeliveryLatencyMatchesModel) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  auto p = MakePacket(0, 1, 1000);
  int32_t wire = p->wire_bytes;
  ASSERT_TRUE(a->Transmit(std::move(p)));
  sim_.RunAll();
  PacketPtr got = b->default_queue()->Poll();
  ASSERT_NE(got, nullptr);
  // ser(src) + pipeline + prop + ser(port) + pipeline.
  SimDuration expected = 2 * SerializationDelay(wire, params_.link_gbps) +
                         2 * params_.nic_pipeline_delay +
                         params_.propagation_delay;
  EXPECT_EQ(got->rx_time, expected);
}

TEST_F(NicFabricTest, SteeringFiltersSelectQueues) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  RxQueue* q1 = b->CreateRxQueue();
  ASSERT_TRUE(b->InstallSteeringFilter(77, q1).ok());
  a->Transmit(MakePacket(0, 1, 100, 77));
  a->Transmit(MakePacket(0, 1, 100, 99));  // no filter -> default queue
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(q1->pending(), 1);
  EXPECT_EQ(b->default_queue()->pending(), 1);
}

TEST_F(NicFabricTest, DuplicateFilterRejected) {
  Nic* b = fabric_.AddHost();
  RxQueue* q = b->CreateRxQueue();
  EXPECT_TRUE(b->InstallSteeringFilter(5, q).ok());
  EXPECT_EQ(b->InstallSteeringFilter(5, q).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(b->RemoveSteeringFilter(5).ok());
  EXPECT_EQ(b->RemoveSteeringFilter(5).code(), StatusCode::kNotFound);
  EXPECT_TRUE(b->InstallSteeringFilter(5, q).ok());
}

TEST_F(NicFabricTest, RxRingOverflowDrops) {
  params_.rx_ring_entries = 8;
  Fabric fabric(&sim_, params_);
  Nic* a = fabric.AddHost();
  Nic* b = fabric.AddHost();
  for (int i = 0; i < 20; ++i) {
    a->Transmit(MakePacket(0, 1, 100));
  }
  sim_.RunFor(10 * kMsec);
  EXPECT_EQ(b->default_queue()->pending(), 8);
  EXPECT_EQ(b->default_queue()->stats().dropped_ring_full, 12);
}

TEST_F(NicFabricTest, TxRingBackpressure) {
  params_.tx_ring_entries = 4;
  Fabric fabric(&sim_, params_);
  Nic* a = fabric.AddHost();
  fabric.AddHost();
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (a->Transmit(MakePacket(0, 1, 64 * 1024))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(a->TxSlotsAvailable(), 0);
  EXPECT_EQ(a->stats().tx_ring_full, 6);
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(a->TxSlotsAvailable(), 4);  // drained onto the wire
}

TEST_F(NicFabricTest, PortQueueOverflowDropsAndCounts) {
  params_.port_queue_bytes = 10000;
  Fabric fabric(&sim_, params_);
  Nic* a = fabric.AddHost();
  Nic* b = fabric.AddHost();
  Nic* c = fabric.AddHost();
  // Incast: two senders blast host 2 simultaneously.
  for (int i = 0; i < 40; ++i) {
    a->Transmit(MakePacket(0, 2, 4000));
    b->Transmit(MakePacket(1, 2, 4000));
  }
  sim_.RunFor(10 * kMsec);
  EXPECT_GT(fabric.stats().dropped_queue_full, 0);
  EXPECT_GT(c->stats().rx_packets, 0);
  EXPECT_LT(c->stats().rx_packets, 80);
}

TEST_F(NicFabricTest, RandomDropInjection) {
  fabric_.set_random_drop_probability(0.5);
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  for (int i = 0; i < 200; ++i) {
    a->Transmit(MakePacket(0, 1, 100));
    sim_.RunFor(10 * kUsec);
  }
  sim_.RunFor(1 * kMsec);
  EXPECT_GT(fabric_.stats().dropped_random, 50);
  EXPECT_GT(b->stats().rx_packets, 50);
  EXPECT_EQ(b->stats().rx_packets + fabric_.stats().dropped_random, 200);
}

TEST_F(NicFabricTest, BadAddressDropped) {
  Nic* a = fabric_.AddHost();
  a->Transmit(MakePacket(0, 99));
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(fabric_.stats().dropped_bad_address, 1);
}

TEST_F(NicFabricTest, InterruptFiresImmediatelyAtLowRate) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  int interrupts = 0;
  b->default_queue()->SetInterruptHandler([&] { ++interrupts; });
  a->Transmit(MakePacket(0, 1, 100));
  sim_.RunAll();
  EXPECT_EQ(interrupts, 1);
}

TEST_F(NicFabricTest, InterruptsMaskedUntilRearm) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  int interrupts = 0;
  b->default_queue()->SetInterruptHandler([&] { ++interrupts; });
  a->Transmit(MakePacket(0, 1, 100));
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(interrupts, 1);
  // Masked: more packets, no interrupt.
  a->Transmit(MakePacket(0, 1, 100));
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(interrupts, 1);
  // Rearm with pending packets fires immediately.
  b->default_queue()->Rearm();
  EXPECT_EQ(interrupts, 2);
}

TEST_F(NicFabricTest, InterruptModerationCoalescesBursts) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  int interrupts = 0;
  b->default_queue()->SetInterruptHandler([&] {
    ++interrupts;
    // NAPI-style: immediately rearm to count every interrupt.
    // (Consumption is not modeled in this test.)
  });
  // A burst of back-to-back packets: after the first (immediate)
  // interrupt, the rest coalesce while masked.
  for (int i = 0; i < 64; ++i) {
    a->Transmit(MakePacket(0, 1, 1500));
  }
  sim_.RunFor(10 * kMsec);
  EXPECT_EQ(interrupts, 1);
  EXPECT_EQ(b->default_queue()->pending(), 64);
}

TEST_F(NicFabricTest, PollWatcherSeesEveryDelivery) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  RxQueue* q = b->CreateRxQueue();
  ASSERT_TRUE(b->InstallSteeringFilter(1, q).ok());
  q->DisableInterrupts();
  int notifications = 0;
  q->SetPollWatcher([&] { ++notifications; });
  for (int i = 0; i < 5; ++i) {
    a->Transmit(MakePacket(0, 1, 100, 1));
  }
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(notifications, 5);
  EXPECT_EQ(q->pending(), 5);
}

TEST_F(NicFabricTest, OldestArrivalTracksHead) {
  Nic* a = fabric_.AddHost();
  Nic* b = fabric_.AddHost();
  EXPECT_EQ(b->default_queue()->OldestArrival(), kSimTimeNever);
  a->Transmit(MakePacket(0, 1, 100));
  sim_.RunFor(100 * kUsec);
  a->Transmit(MakePacket(0, 1, 100));
  sim_.RunFor(100 * kUsec);
  SimTime first = b->default_queue()->OldestArrival();
  EXPECT_LT(first, 100 * kUsec);
  b->default_queue()->Poll();
  EXPECT_GT(b->default_queue()->OldestArrival(), first);
}

}  // namespace
}  // namespace snap
