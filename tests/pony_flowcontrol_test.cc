// Flow control and isolation end-to-end (Section 3.3): a slow receiver
// application backpressures senders through ring occupancy and credits;
// one-sided overload falls back to congestion control and engine CPU
// fair-sharing rather than application-level flow control; streams avoid
// head-of-line blocking between messages; and random wire bytes never
// crash the decoder (fuzz property).
#include <gtest/gtest.h>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/packet/wire.h"

namespace snap {
namespace {

SimHostOptions Dedicated() {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  return options;
}

class FlowControlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(61);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
    a_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), Dedicated());
    b_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), Dedicated());
    ea_ = a_->CreatePonyEngine("ea");
    eb_ = b_->CreatePonyEngine("eb");
    ca_ = a_->CreateClient(ea_, "sender");
    cb_ = b_->CreateClient(eb_, "receiver");
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
  std::unique_ptr<SimHost> a_;
  std::unique_ptr<SimHost> b_;
  PonyEngine* ea_ = nullptr;
  PonyEngine* eb_ = nullptr;
  std::unique_ptr<PonyClient> ca_;
  std::unique_ptr<PonyClient> cb_;
};

TEST_F(FlowControlTest, NonConsumingReceiverStallsSender) {
  // The receiving application NEVER polls its message ring. Credits stop
  // being granted once the posted receive ring fills; the sender stalls
  // instead of flooding the receiver with unbounded data.
  CpuCostSink cost;
  uint64_t stream = ca_->CreateStream(eb_->address());
  constexpr int kMessages = 4000;  // ~26MB offered, far above credit+ring
  int accepted = 0;
  for (int i = 0; i < kMessages; ++i) {
    if (ca_->SendMessage(eb_->address(), stream, 64 * 1024, {}, &cost) !=
        0) {
      ++accepted;
    }
    if (i % 64 == 0) {
      sim_->RunFor(1 * kMsec);
    }
  }
  sim_->RunFor(2000 * kMsec);
  // Delivered bytes bounded by ring capacity (1024 messages) — in
  // particular, far less than offered.
  EXPECT_LT(eb_->stats().messages_delivered, 1100);
  // Sender-side flow shows the stall: credit exhausted, backlog waiting.
  Flow* flow = ea_->FindFlow(eb_->address());
  ASSERT_NE(flow, nullptr);
  EXPECT_FALSE(flow->HasCredit(64 * 1024));

  // Once the app drains, credits flow and delivery resumes.
  int drained = 0;
  while (cb_->PollMessage(&cost).has_value()) {
    ++drained;
  }
  EXPECT_GT(drained, 0);
  sim_->RunFor(2000 * kMsec);
  EXPECT_GT(eb_->stats().messages_delivered,
            static_cast<int64_t>(drained));
}

TEST_F(FlowControlTest, StreamsAvoidHeadOfLineBlocking) {
  // A huge message on stream 1 must not delay a tiny message on stream 2
  // by the huge message's full serialization time (Section 3.3: streams
  // "avoid head-of-line blocking of independent messages").
  CpuCostSink cost;
  uint64_t big_stream = ca_->CreateStream(eb_->address());
  uint64_t small_stream = ca_->CreateStream(eb_->address());
  ca_->SendMessage(eb_->address(), big_stream, 8 << 20, {}, &cost);
  ca_->SendMessage(eb_->address(), small_stream, 64, {}, &cost);
  SimTime start = sim_->now();

  SimTime small_arrival = 0;
  SimTime big_arrival = 0;
  while ((small_arrival == 0 || big_arrival == 0) &&
         sim_->now() - start < 10 * kSec) {
    // Fine-grained polling: arrival-time quantization must stay well
    // below the expected gap between the two messages.
    sim_->RunFor(50 * kUsec);
    while (true) {
      auto msg = cb_->PollMessage(&cost);
      if (!msg.has_value()) {
        break;
      }
      if (msg->stream_id == small_stream) {
        small_arrival = sim_->now();
      } else {
        big_arrival = sim_->now();
      }
    }
  }
  ASSERT_NE(small_arrival, 0);
  ASSERT_NE(big_arrival, 0);
  // The small message did not wait for the 8MB transfer (~2ms at 40G).
  EXPECT_LT(small_arrival - start, (big_arrival - start) / 4);
}

TEST_F(FlowControlTest, CommandQueueOverflowIsVisibleToApp) {
  // The command ring is bounded; a non-running engine means Submit
  // eventually returns 0 and the application must retry.
  CpuCostSink cost;
  uint64_t stream = ca_->CreateStream(eb_->address());
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    if (ca_->SendMessage(eb_->address(), stream, 64, {}, &cost) == 0) {
      break;
    }
    ++accepted;
  }
  // Ring capacity is 1024; without running the sim the engine never
  // drains it.
  EXPECT_LE(accepted, 1024);
  EXPECT_GT(accepted, 0);
}

TEST_F(FlowControlTest, OneSidedOverloadDegradesGracefully) {
  // Hammer the target with far more one-sided reads than one engine core
  // serves; ops complete at the engine's service rate, congestion control
  // and CPU scheduling absorb the overload, nothing deadlocks or crashes
  // (Section 3.3: one-sided ops fall back to CC + CPU scheduling).
  uint64_t region = cb_->RegisterRegion(1 << 16, false);
  OneSidedLoadTask::Options options;
  options.peer = eb_->address();
  options.mode = OneSidedLoadTask::Mode::kRead;
  options.region_id = region;
  options.read_bytes = 64;
  options.max_outstanding = 512;
  options.table_entries = 512;
  OneSidedLoadTask load("load", a_->cpu(), ca_.get(), options);
  load.Start();
  sim_->RunFor(200 * kMsec);
  EXPECT_GT(load.ops_completed(), 50000);  // served at engine rate
  EXPECT_EQ(eb_->stats().op_errors, 0);
  // Latency reflects queueing, not failure.
  EXPECT_GT(load.latency().P50(), 10 * kUsec);
}

TEST_F(FlowControlTest, EngineFairSharesAcrossCompetingFlows) {
  // Two senders on different hosts blast one receiver engine; both make
  // comparable progress (round-robin flow servicing + per-flow credits).
  auto c_host = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                          directory_.get(), Dedicated());
  PonyEngine* ec = c_host->CreatePonyEngine("ec");
  auto cc = c_host->CreateClient(ec, "sender2");

  PonyStreamReceiverTask receiver("rx", b_->cpu(), cb_.get());
  receiver.Start();
  PonyStreamSenderTask::Options so;
  so.peer = eb_->address();
  so.message_bytes = 64 * 1024;
  PonyStreamSenderTask sender1("tx1", a_->cpu(), ca_.get(), so);
  PonyStreamSenderTask sender2("tx2", c_host->cpu(), cc.get(), so);
  sender1.Start();
  sender2.Start();
  sim_->RunFor(100 * kMsec);

  Flow* f1 = ea_->FindFlow(eb_->address());
  Flow* f2 = ec->FindFlow(eb_->address());
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  double sent1 = static_cast<double>(f1->stats().data_packets_sent);
  double sent2 = static_cast<double>(f2->stats().data_packets_sent);
  EXPECT_GT(sent1, 1000);
  EXPECT_GT(sent2, 1000);
  double ratio = sent1 / sent2;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// Fuzz property: arbitrary bytes never crash the wire decoder.
class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, DecoderNeverCrashesOnGarbage) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.NextBounded(128);
    std::vector<uint8_t> garbage(len);
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextBounded(256));
    }
    auto result = DecodePonyHeader(garbage.data(), garbage.size());
    if (result.ok()) {
      // If it parsed, the version must at least be in the supported range.
      EXPECT_GE(result->version, kPonyWireVersionMin);
      EXPECT_LE(result->version, kPonyWireVersionMax);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace snap
