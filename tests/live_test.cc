// Live-mode tests: the Snap engines on real OS threads (src/live/) — wire
// frame codec round-trips, executor timer clamping, end-to-end echo RPC
// over both live fabrics with QoS + telemetry + tracing attached, and the
// sim-vs-live parity check the substrate split promises: same engines,
// same transport, same observable message counts.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/live/live_apps.h"
#include "src/live/live_runtime.h"
#include "src/packet/wire.h"
#include "src/qos/tenant.h"

namespace snap {
namespace {

constexpr int64_t kTestDeadlineNs = 20LL * 1000 * 1000 * 1000;  // 20 s

TEST(WireFrameTest, RoundTripsPonyPacketWithPayload) {
  Packet packet;
  packet.src_host = 3;
  packet.dst_host = 7;
  packet.steering_hash = 0xdeadbeef;
  packet.tenant = 9;
  // Timestamps (Timely's RTT inputs) ride only in wire version 2.
  packet.pony.version = 2;
  packet.pony.flow_id = 42;
  packet.pony.seq = 1001;
  packet.pony.ack = 998;
  packet.pony.type = PonyPacketType::kData;
  packet.pony.op_id = 0x1234567890abcdefULL;
  packet.pony.stream_id = 17;
  packet.pony.msg_offset = 4096;
  packet.pony.msg_length = 8192;
  packet.pony.tx_timestamp = 123456789;
  packet.pony.crc32 = 0xcafef00d;
  packet.payload_bytes = 512;
  packet.wire_bytes = 600;
  packet.data = {1, 2, 3, 4, 5, 6, 7, 8, 9};

  std::vector<uint8_t> frame;
  ASSERT_TRUE(EncodeWireFrame(packet, &frame).ok());

  StatusOr<PacketPtr> decoded = DecodeWireFrame(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  const Packet& p = **decoded;
  EXPECT_EQ(p.src_host, 3);
  EXPECT_EQ(p.dst_host, 7);
  EXPECT_EQ(p.steering_hash, 0xdeadbeefu);
  EXPECT_EQ(p.tenant, 9u);
  EXPECT_EQ(p.proto, WireProtocol::kPony);
  EXPECT_EQ(p.pony.flow_id, 42u);
  EXPECT_EQ(p.pony.seq, 1001u);
  EXPECT_EQ(p.pony.ack, 998u);
  EXPECT_EQ(p.pony.op_id, 0x1234567890abcdefULL);
  EXPECT_EQ(p.pony.stream_id, 17u);
  EXPECT_EQ(p.pony.msg_offset, 4096u);
  EXPECT_EQ(p.pony.msg_length, 8192u);
  EXPECT_EQ(p.pony.tx_timestamp, 123456789);
  EXPECT_EQ(p.pony.crc32, 0xcafef00du);
  EXPECT_EQ(p.payload_bytes, 512);
  EXPECT_EQ(p.wire_bytes, 600);
  EXPECT_EQ(p.data, packet.data);
}

TEST(WireFrameTest, RejectsTruncatedAndGarbageFrames) {
  Packet packet;
  packet.src_host = 0;
  packet.dst_host = 1;
  packet.data = {1, 2, 3};
  std::vector<uint8_t> frame;
  ASSERT_TRUE(EncodeWireFrame(packet, &frame).ok());

  // Truncations at every prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(DecodeWireFrame(frame.data(), len).ok()) << len;
  }
  // Wrong magic.
  std::vector<uint8_t> garbage(frame);
  garbage[0] ^= 0xff;
  EXPECT_FALSE(DecodeWireFrame(garbage.data(), garbage.size()).ok());
}

TEST(LiveExecutorTest, FiresTimersAndClampsPastDeadlines) {
  LiveExecutor::Options options;
  options.name = "timer-test";
  LiveExecutor exec(/*seed=*/1, /*epoch_ns=*/MonotonicTimeNs(), options);
  std::atomic<int> fired{0};
  // Deadline 0 is in the past once the thread starts (the sim would
  // CHECK-fail here; live clamps and fires on the first loop pass).
  exec.ScheduleAt(0, [&] { fired.fetch_add(1); });
  exec.Schedule(1 * kMsec, [&] { fired.fetch_add(1); });
  exec.Start();
  int64_t deadline = MonotonicTimeNs() + kTestDeadlineNs;
  while (fired.load() < 2 && MonotonicTimeNs() < deadline) {
    std::this_thread::yield();
  }
  exec.Stop();
  EXPECT_EQ(fired.load(), 2);
  LiveExecutor::Stats stats = exec.GetStats();
  EXPECT_EQ(stats.timer_fires, 2);
  EXPECT_GT(stats.loop_iterations, 0);
}

// Runs a two-host echo workload on `runtime` and returns (client, server)
// results. The runtime must not be started yet.
struct EchoRun {
  LiveAppResult client;
  LiveAppResult server;
};
EchoRun RunEchoWorkload(LiveRuntime* runtime, int iterations,
                        int64_t message_bytes,
                        const qos::TenantSpec* client_tenant = nullptr) {
  auto client = runtime->host(0)->CreateClient("rpc-client");
  auto server = runtime->host(1)->CreateClient("echo-server");
  PonyAddress client_addr = runtime->host(0)->engine()->address();
  PonyAddress server_addr = runtime->host(1)->engine()->address();
  // Streams bind engine state: setup phase only.
  uint64_t ping_stream = client->CreateStream(server_addr);
  uint64_t reply_stream = server->CreateStream(client_addr);
  if (client_tenant != nullptr) {
    client->SetTenant(*client_tenant);
  }

  runtime->Start();
  int64_t deadline = MonotonicTimeNs() + kTestDeadlineNs;
  EchoRun run;
  std::thread server_thread([&] {
    run.server = RunLiveEchoServer(server.get(), reply_stream, client_addr,
                                   iterations, deadline);
  });
  std::thread client_thread([&] {
    run.client = RunLiveRpcClient(client.get(), ping_stream, server_addr,
                                  iterations, message_bytes,
                                  /*outstanding=*/4, deadline);
  });
  client_thread.join();
  server_thread.join();
  runtime->Stop();
  return run;
}

void ExpectCleanEngines(LiveRuntime* runtime) {
  for (int h = 0; h < runtime->num_hosts(); ++h) {
    const PonyEngine::Stats& stats = runtime->host(h)->engine()->stats();
    EXPECT_EQ(stats.crc_drops, 0) << "host " << h;
    EXPECT_EQ(stats.corrupt_accepted, 0) << "host " << h;
    EXPECT_EQ(stats.op_errors, 0) << "host " << h;
  }
}

TEST(LiveRuntimeTest, LoopbackEchoEndToEnd) {
  constexpr int kIterations = 100;
  constexpr int64_t kBytes = 64;
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());

  qos::TenantRegistry tenants;
  qos::TenantSpec spec;
  spec.id = 7;
  spec.name = "echo";
  spec.weight = 4;
  tenants.Register(spec);
  runtime.EnableQos(&tenants);
  runtime.EnableSeriesSampling(10 * kMsec);
  runtime.EnableTracing();

  EchoRun run =
      RunEchoWorkload(&runtime, kIterations, kBytes, tenants.Find(7));

  EXPECT_FALSE(run.client.timed_out);
  EXPECT_FALSE(run.server.timed_out);
  EXPECT_EQ(run.client.rpcs_completed, kIterations);
  EXPECT_EQ(run.client.bytes_received, kIterations * kBytes);
  EXPECT_EQ(run.server.messages_received, kIterations);
  EXPECT_EQ(run.client.send_errors + run.server.send_errors, 0);
  EXPECT_EQ(run.client.rtt_ns.size(), static_cast<size_t>(kIterations));
  for (int64_t rtt : run.client.rtt_ns) {
    EXPECT_GT(rtt, 0);
  }
  ExpectCleanEngines(&runtime);

  // The transport ran over the ring fabric, not some side channel.
  LiveRuntime::FabricStats fabric = runtime.GetFabricStats();
  EXPECT_GT(fabric.delivered, 2 * kIterations);  // data + acks

  // Telemetry and tracing carried over: merged registry has engine
  // counters, merged trace has events on distinct host tracks.
  Telemetry merged;
  runtime.MergeTelemetry(&merged);
  std::map<std::string, int64_t> values = merged.SnapshotValues();
  EXPECT_FALSE(values.empty());
  auto trace = runtime.MergedTrace();
  EXPECT_FALSE(trace->events().empty());
}

TEST(LiveRuntimeTest, UdpEchoEndToEnd) {
  constexpr int kIterations = 50;
  constexpr int64_t kBytes = 64;
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kUdp;
  LiveRuntime runtime(options);
  Status init = runtime.Init();
  if (!init.ok()) {
    GTEST_SKIP() << "UDP sockets unavailable: " << init.message();
  }

  EchoRun run = RunEchoWorkload(&runtime, kIterations, kBytes);

  EXPECT_FALSE(run.client.timed_out);
  EXPECT_FALSE(run.server.timed_out);
  EXPECT_EQ(run.client.rpcs_completed, kIterations);
  EXPECT_EQ(run.server.messages_received, kIterations);
  ExpectCleanEngines(&runtime);
  LiveRuntime::FabricStats fabric = runtime.GetFabricStats();
  EXPECT_GT(fabric.delivered, 2 * kIterations);
}

// The substrate promise: the sim and live runtimes drive the SAME engine
// and transport code, so the application-observable outcome of a fixed
// workload — messages delivered, bytes delivered, zero integrity errors —
// matches exactly. Timing (RTTs, packet counts, retransmits) is excluded:
// wall clocks and modeled clocks legitimately differ.
TEST(LiveRuntimeTest, SimVsLiveParityOnEchoWorkload) {
  constexpr int kIterations = 50;
  constexpr int64_t kBytes = 64;

  // --- Sim leg ---
  Simulator sim(42);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHostOptions host_options;
  host_options.group.mode = SchedulingMode::kDedicatedCores;
  host_options.group.dedicated_cores = {0};
  SimHost a(&sim, &fabric, &directory, host_options);
  SimHost b(&sim, &fabric, &directory, host_options);
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "ping");
  auto cb = b.CreateClient(eb, "echo");
  PonyEchoServerTask server("echo", b.cpu(), cb.get(), /*spin=*/true);
  server.Start();
  PonyPingTask::Options ping_options;
  ping_options.peer = eb->address();
  ping_options.iterations = kIterations;
  ping_options.message_bytes = kBytes;
  ping_options.spin = true;
  PonyPingTask ping("ping", a.cpu(), ca.get(), ping_options);
  ping.Start();
  sim.RunFor(2000 * kMsec);
  ASSERT_TRUE(ping.done());

  // --- Live leg ---
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());
  EchoRun run = RunEchoWorkload(&runtime, kIterations, kBytes);
  ASSERT_FALSE(run.client.timed_out);
  ASSERT_FALSE(run.server.timed_out);

  // --- Parity: application-observable outcomes match. ---
  // Ping client observed kIterations completed RPCs in both worlds.
  EXPECT_EQ(ping.latency().count(), kIterations);
  EXPECT_EQ(run.client.rpcs_completed, kIterations);

  // Engines delivered the same messages and bytes to the apps.
  const PonyEngine::Stats& sim_client = ea->stats();
  const PonyEngine::Stats& sim_server = eb->stats();
  const PonyEngine::Stats& live_client =
      runtime.host(0)->engine()->stats();
  const PonyEngine::Stats& live_server =
      runtime.host(1)->engine()->stats();
  EXPECT_EQ(sim_server.messages_delivered, live_server.messages_delivered);
  EXPECT_EQ(sim_client.messages_delivered, live_client.messages_delivered);
  EXPECT_EQ(sim_server.message_bytes_delivered,
            live_server.message_bytes_delivered);
  EXPECT_EQ(sim_client.message_bytes_delivered,
            live_client.message_bytes_delivered);

  // Integrity invariants hold in both worlds.
  for (const PonyEngine::Stats* s :
       {&sim_client, &sim_server, &live_client, &live_server}) {
    EXPECT_EQ(s->crc_drops, 0);
    EXPECT_EQ(s->corrupt_accepted, 0);
    EXPECT_EQ(s->op_errors, 0);
  }
}

}  // namespace
}  // namespace snap
