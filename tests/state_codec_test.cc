// Upgrade state-codec tests: round trips, tag enforcement, and section
// structure (the intermediate format of Section 4).
#include <gtest/gtest.h>

#include "src/snap/state_codec.h"

namespace snap {
namespace {

TEST(StateCodecTest, ScalarRoundTrip) {
  StateWriter w;
  w.PutU64(0xDEADBEEFCAFEF00Dull);
  w.PutI64(-1234567890123ll);
  w.PutU32(0xA5A5A5A5u);
  w.PutU16(65535);
  w.PutU8(200);
  w.PutBool(true);
  w.PutBool(false);
  w.PutDouble(3.14159265358979);

  StateReader r(w.buffer());
  EXPECT_EQ(r.GetU64(), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(r.GetI64(), -1234567890123ll);
  EXPECT_EQ(r.GetU32(), 0xA5A5A5A5u);
  EXPECT_EQ(r.GetU16(), 65535);
  EXPECT_EQ(r.GetU8(), 200);
  EXPECT_TRUE(r.GetBool());
  EXPECT_FALSE(r.GetBool());
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.14159265358979);
  EXPECT_TRUE(r.AtEnd());
}

TEST(StateCodecTest, StringAndBytesRoundTrip) {
  StateWriter w;
  w.PutString("pony express engine state");
  w.PutString("");
  std::vector<uint8_t> blob = {0, 1, 255, 128, 7};
  w.PutBytes(blob);
  w.PutBytes({});

  StateReader r(w.buffer());
  EXPECT_EQ(r.GetString(), "pony express engine state");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetBytes(), blob);
  EXPECT_TRUE(r.GetBytes().empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(StateCodecTest, SectionsMatchByName) {
  StateWriter w;
  w.BeginSection("flows");
  w.PutU32(3);
  w.BeginSection("streams");
  w.PutU32(7);

  StateReader r(w.buffer());
  r.ExpectSection("flows");
  EXPECT_EQ(r.GetU32(), 3u);
  r.ExpectSection("streams");
  EXPECT_EQ(r.GetU32(), 7u);
}

TEST(StateCodecDeathTest, TagMismatchAborts) {
  StateWriter w;
  w.PutU64(1);
  StateReader r(w.buffer());
  // Reading the wrong type must fail loudly (schema skew during an
  // upgrade must never silently corrupt an engine).
  EXPECT_DEATH(r.GetU32(), "state tag mismatch");
}

TEST(StateCodecDeathTest, SectionNameMismatchAborts) {
  StateWriter w;
  w.BeginSection("flows");
  StateReader r(w.buffer());
  EXPECT_DEATH(r.ExpectSection("streams"), "state section mismatch");
}

TEST(StateCodecDeathTest, UnderrunAborts) {
  StateWriter w;
  w.PutU8(1);
  StateReader r(w.buffer());
  EXPECT_EQ(r.GetU8(), 1);
  EXPECT_DEATH(r.GetU64(), "state underrun");
}

TEST(StateCodecTest, InterleavedComplexState) {
  // A realistic engine dump: sections with repeated groups.
  StateWriter w;
  w.BeginSection("engine");
  w.PutU32(2);  // two flows
  for (uint32_t i = 0; i < 2; ++i) {
    w.BeginSection("flow");
    w.PutU64(i * 100);
    w.PutBytes(std::vector<uint8_t>(i + 1, static_cast<uint8_t>(i)));
  }
  StateReader r(w.buffer());
  r.ExpectSection("engine");
  uint32_t n = r.GetU32();
  ASSERT_EQ(n, 2u);
  for (uint32_t i = 0; i < n; ++i) {
    r.ExpectSection("flow");
    EXPECT_EQ(r.GetU64(), i * 100);
    EXPECT_EQ(r.GetBytes().size(), i + 1);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(StateCodecTest, SizeBytesTracksBuffer) {
  StateWriter w;
  EXPECT_EQ(w.size_bytes(), 0u);
  w.PutU64(1);
  EXPECT_EQ(w.size_bytes(), 9u);  // tag + 8 bytes
}

}  // namespace
}  // namespace snap
