// Flight-recorder layer: TraceRecorder event emission and JSON export,
// Telemetry registry (counters/gauges/histograms, snapshots, dashboard),
// Histogram JSON export, and an end-to-end check that a traced simulation
// produces the expected event vocabulary (poll slices, scheduler instants,
// sampled packet-lifecycle flows).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/sim/sharded_sim.h"
#include "src/stats/histogram.h"
#include "src/stats/telemetry.h"
#include "src/stats/trace.h"
#include "src/testing/seed_sweep.h"
#include "src/util/rng.h"

namespace snap {
namespace {

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// --- TraceRecorder ---------------------------------------------------------

TEST(TraceRecorderTest, CompleteEventJson) {
  TraceRecorder trace;
  trace.Complete(/*start=*/1500, /*dur=*/2250, /*tid=*/3, "engine0", "poll");
  std::string json = trace.ToJson();
  // ns exported as fixed-point microseconds.
  EXPECT_NE(json.find("\"name\":\"engine0\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"poll\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.250"), std::string::npos);
}

TEST(TraceRecorderTest, InstantAndCounterEvents) {
  TraceRecorder trace;
  trace.Instant(1000, TraceRecorder::kSchedTrack, "wake:engine0", "sched",
                TraceArgInt("core", 2));
  trace.CounterValue(2000, "grp/active_workers", 3);
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"core\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":3}"), std::string::npos);
}

TEST(TraceRecorderTest, AsyncSpansMatchBeginEndPairs) {
  TraceRecorder trace;
  trace.AsyncBegin(100, 1, "brownout", "upgrade",
                   TraceArgStr("engine", "ea"));
  trace.AsyncBegin(200, 2, "brownout", "upgrade");
  trace.AsyncEnd(250, 2, "brownout", "upgrade");
  trace.AsyncEnd(400, 1, "brownout", "upgrade");
  trace.AsyncBegin(500, 3, "blackout", "upgrade");  // still open

  auto brownouts = trace.AsyncSpans("brownout");
  ASSERT_EQ(brownouts.size(), 2u);
  EXPECT_EQ(brownouts[0].begin, 100);
  EXPECT_EQ(brownouts[0].end, 400);
  EXPECT_EQ(brownouts[0].args, TraceArgStr("engine", "ea"));
  EXPECT_EQ(brownouts[1].begin, 200);
  EXPECT_EQ(brownouts[1].end, 250);

  auto blackouts = trace.AsyncSpans("blackout");
  ASSERT_EQ(blackouts.size(), 1u);
  EXPECT_EQ(blackouts[0].end, -1);  // unterminated span stays open
}

TEST(TraceRecorderTest, FlowPointsShareNameAndCarryStageInArgs) {
  TraceRecorder trace;
  trace.FlowPoint('s', 100, 0, 16, "msg", "pkt",
                  TraceArgStr("point", "app_enqueue"));
  trace.FlowPoint('t', 200, TraceRecorder::kFabricTrack, 16, "msg", "pkt",
                  TraceArgStr("point", "fabric_enq"));
  trace.FlowPoint('f', 300, 1, 16, "msg", "pkt",
                  TraceArgStr("point", "deliver"));
  std::string json = trace.ToJson();
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"msg\""), 3);
  EXPECT_EQ(CountOccurrences(json, "\"id\":\"16\""), 3);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  // Flow end binds to the enclosing slice.
  EXPECT_NE(json.find("\"ph\":\"f\",\"pid\":1,\"tid\":1,\"ts\":0.300,"
                      "\"id\":\"16\",\"bp\":\"e\""),
            std::string::npos)
      << json;
}

TEST(TraceRecorderTest, DeterministicSampling) {
  TraceRecorder::Options options;
  options.packet_sample_every = 16;
  TraceRecorder trace(options);
  EXPECT_FALSE(trace.ShouldSampleMessage(0));  // op 0 = not a Pony op
  EXPECT_FALSE(trace.ShouldSampleMessage(1));
  EXPECT_TRUE(trace.ShouldSampleMessage(16));
  EXPECT_TRUE(trace.ShouldSampleMessage(32));
  EXPECT_FALSE(trace.ShouldSampleMessage(33));

  TraceRecorder::Options off;
  off.packet_sample_every = 0;
  TraceRecorder disabled(off);
  EXPECT_FALSE(disabled.ShouldSampleMessage(16));
}

TEST(TraceRecorderTest, CurrentCoreFallback) {
  TraceRecorder trace;
  EXPECT_EQ(trace.current_core_or(TraceRecorder::kFabricTrack),
            TraceRecorder::kFabricTrack);
  trace.set_current_core(2);
  EXPECT_EQ(trace.current_core_or(TraceRecorder::kFabricTrack), 2);
  trace.set_current_core(-1);
  EXPECT_EQ(trace.current_core_or(0), 0);
}

TEST(TraceRecorderTest, EscapesNamesInJson) {
  TraceRecorder trace;
  trace.Instant(0, 0, "we\"ird\\name", "cat");
  std::string json = trace.ToJson();
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos) << json;
}

TEST(TraceRecorderTest, WriteJsonRoundTrip) {
  TraceRecorder trace;
  trace.Complete(0, 1000, 0, "slice", "task");
  std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(trace.WriteJson(path));
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), trace.ToJson());
  std::remove(path.c_str());
}

// --- Telemetry -------------------------------------------------------------

TEST(TelemetryTest, CounterPointersAreStable) {
  Telemetry telemetry;
  Counter* rx = telemetry.GetCounter("snap/e0/rx");
  rx->Add(5);
  // Creating more counters must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    telemetry.GetCounter("snap/e0/c" + std::to_string(i))->Increment();
  }
  EXPECT_EQ(telemetry.GetCounter("snap/e0/rx"), rx);
  rx->Increment();
  EXPECT_EQ(telemetry.SnapshotValues()["snap/e0/rx"], 6);
}

TEST(TelemetryTest, SetCounterPublishesAbsoluteValues) {
  Telemetry telemetry;
  telemetry.SetCounter("snap/e0/tx", 10);
  telemetry.SetCounter("snap/e0/tx", 7);  // absolute, not cumulative
  EXPECT_EQ(telemetry.SnapshotValues()["snap/e0/tx"], 7);
}

TEST(TelemetryTest, GaugesEvaluateAtSnapshotTime) {
  Telemetry telemetry;
  int64_t live = 3;
  telemetry.RegisterGauge("snap/grp/active_workers", [&live] { return live; });
  EXPECT_EQ(telemetry.SnapshotValues()["snap/grp/active_workers"], 3);
  live = 5;
  EXPECT_EQ(telemetry.SnapshotValues()["snap/grp/active_workers"], 5);
  telemetry.UnregisterGauge("snap/grp/active_workers");
  EXPECT_EQ(telemetry.num_gauges(), 0u);
}

TEST(TelemetryTest, SnapshotJsonContainsAllSections) {
  Telemetry telemetry;
  telemetry.GetCounter("snap/e0/rx")->Add(2);
  telemetry.RegisterGauge("snap/e0/queue_depth", [] { return int64_t{4}; });
  telemetry.GetHistogram("snap/e0/poll_ns")->Record(1000);
  std::string json = telemetry.SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"snap/e0/rx\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"snap/e0/queue_depth\":4"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"snap/e0/poll_ns\""), std::string::npos);
}

TEST(TelemetryTest, DashboardListsHistogramsAndCounters) {
  Telemetry telemetry;
  Histogram* h = telemetry.GetHistogram("snap/e0/sched_delay_ns");
  for (int i = 1; i <= 100; ++i) {
    h->Record(i * 1000);
  }
  telemetry.GetCounter("snap/e0/rx_packets")->Add(42);
  std::string dash = telemetry.DumpDashboard();
  EXPECT_NE(dash.find("snap/e0/sched_delay_ns"), std::string::npos) << dash;
  EXPECT_NE(dash.find("snap/e0/rx_packets"), std::string::npos);
  EXPECT_NE(dash.find("42"), std::string::npos);
}

// --- Histogram JSON --------------------------------------------------------

TEST(HistogramJsonTest, SummaryFieldsAndBuckets) {
  Histogram h;
  h.Record(10);
  h.Record(10);
  h.Record(1000);
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":10"), std::string::npos);
  EXPECT_NE(json.find("\"max\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  // Exactly the two non-empty buckets appear: [upper,count] pairs.
  EXPECT_NE(json.find("\"buckets\":[["), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "],["), 1);
}

TEST(HistogramJsonTest, EmptyHistogram) {
  Histogram h;
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":0"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[]"), std::string::npos);
}

// Merge must preserve the distribution: percentiles of (a merged with b)
// match a histogram fed the union of samples, bucket-exactly.
TEST(HistogramJsonTest, MergePercentileRoundTrip) {
  Rng rng(42);
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = static_cast<int64_t>(rng.NextExponential(20000.0));
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p" << p;
  }
  EXPECT_EQ(a.ToJson(), combined.ToJson());
}

// --- End-to-end: a traced simulation produces the expected vocabulary -----

TEST(TraceIntegrationTest, SimulationEmitsPollSchedAndFlowEvents) {
  Simulator sim(1234);
  TraceRecorder trace;
  sim.set_tracer(&trace);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kCompactingEngines;
  SimHost a(&sim, &fabric, &directory, options);
  SimHost b(&sim, &fabric, &directory, options);
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");
  PonyStreamReceiverTask receiver("rx", b.cpu(), cb.get());
  receiver.Start();
  PonyStreamSenderTask::Options so;
  so.peer = eb->address();
  so.message_bytes = 16 * 1024;
  so.num_streams = 4;
  PonyStreamSenderTask sender("tx", a.cpu(), ca.get(), so);
  sender.Start();
  sim.RunFor(20 * kMsec);

  int polls = 0;
  int task_slices = 0;
  int flow_starts = 0;
  int flow_steps = 0;
  int flow_ends = 0;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase == 'X' && std::string(e.category) == "poll") {
      ++polls;
      EXPECT_GT(e.dur, 0);
      // Poll slices are attributed to a real core track, not a virtual one.
      EXPECT_LT(e.tid, TraceRecorder::kSchedTrack);
    }
    if (e.phase == 'X' && std::string(e.category) == "task") {
      ++task_slices;
    }
    if (e.phase == 's') ++flow_starts;
    if (e.phase == 't') ++flow_steps;
    if (e.phase == 'f') ++flow_ends;
  }
  EXPECT_GT(polls, 100);
  EXPECT_GT(task_slices, 100);
#ifndef SNAP_DISABLE_PACKET_TRACE
  EXPECT_GT(flow_starts, 0);
  EXPECT_GT(flow_steps, flow_starts);  // several hops per sampled message
  EXPECT_GT(flow_ends, 0);
  EXPECT_LE(flow_ends, flow_starts);
#endif

  // Per-engine poll histograms got installed and populated via Telemetry.
  auto json = sim.telemetry().SnapshotJson();
  EXPECT_NE(json.find("\"snap/ea/poll_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"snap/eb/poll_ns\""), std::string::npos);
  EXPECT_GT(sim.telemetry().GetHistogram("snap/ea/poll_ns")->count(), 0);

  // The trace exports as structurally sane JSON.
  std::string traced = trace.ToJson();
  EXPECT_EQ(traced.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u);
  EXPECT_EQ(traced.back(), '\n');
}

// --- Cross-shard flight-recorder merge ------------------------------------

// A sharded sweep with tracing on: per-shard recorders fold into one
// deterministic trace (ShardedSim::MergedTrace). Byte-identical across
// reruns, tracks remapped per shard, and — tracing being pure
// observation — the simulation digest is unchanged traced vs untraced.
TEST(TraceIntegrationTest, ShardedSweepMergedTraceDeterministic) {
  auto run = [](int shards, bool enable_trace) {
    SeedSweepOptions options;
    options.num_seeds = 1;
    options.check_replay = false;
    options.shards = shards;
    options.enable_trace = enable_trace;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    SweepRunResult result = runner.RunOne(5, profiles.back());
    EXPECT_TRUE(result.ok);
    return result;
  };
  SweepRunResult first = run(4, true);
  SweepRunResult second = run(4, true);
  ASSERT_FALSE(first.merged_trace_json.empty());
  EXPECT_GT(first.merged_trace_json.size(), 10000u)
      << "merged trace suspiciously small";
  EXPECT_EQ(first.merged_trace_json, second.merged_trace_json);
  // Host B lives on shard 1: its tracks are remapped by the shard track
  // stride, so the merged trace contains shard-1 scheduler events.
  EXPECT_NE(first.merged_trace_json.find(
                "\"tid\":" + std::to_string(ShardedSim::kShardTrackStride +
                                            TraceRecorder::kSchedTrack)),
            std::string::npos);
  // Tracing is pure observation: the simulation digest matches the
  // untraced run exactly.
  SweepRunResult untraced = run(4, false);
  EXPECT_EQ(untraced.trace_digest, first.trace_digest)
      << "tracing perturbed a sharded run";
  EXPECT_EQ(untraced.delivered_messages, first.delivered_messages);
}

// The serial path reports the same field, so trace-based tooling works
// unchanged at shards=1.
TEST(TraceIntegrationTest, SerialSweepTraceJsonPopulated) {
  SeedSweepOptions options;
  options.num_seeds = 1;
  options.check_replay = false;
  options.enable_trace = true;
  SeedSweepRunner runner(options);
  auto profiles = SeedSweepRunner::DefaultProfiles();
  SweepRunResult result = runner.RunOne(5, profiles.front());
  EXPECT_TRUE(result.ok);
  ASSERT_FALSE(result.merged_trace_json.empty());
  EXPECT_EQ(result.merged_trace_json.find(
                "{\"displayTimeUnit\":\"ns\",\"traceEvents\":["),
            0u);
}

}  // namespace
}  // namespace snap
