// End-to-end Pony Express tests over the full stack: two simulated hosts,
// real engines scheduled on simulated cores, packets through the fabric.
#include <gtest/gtest.h>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"

namespace snap {
namespace {

class PonyE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(42);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
  }

  SimHostOptions DedicatedOptions() {
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {0};
    return options;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
};

TEST_F(PonyE2eTest, SmallMessageDeliveredWithPayload) {
  SimHost a(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  SimHost b(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");

  CpuCostSink cost;
  uint64_t stream = ca->CreateStream(eb->address());
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8};
  uint64_t op = ca->SendMessage(eb->address(), stream, 0, payload, &cost);
  ASSERT_NE(op, 0u);

  sim_->RunFor(5 * kMsec);

  auto msg = cb->PollMessage(&cost);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->data, payload);
  EXPECT_EQ(msg->from.host, a.host_id());
  EXPECT_EQ(msg->stream_id, stream);

  // Sender got a completion.
  auto completion = ca->PollCompletion(&cost);
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->op_id, op);
  EXPECT_EQ(completion->status, PonyOpStatus::kOk);
}

TEST_F(PonyE2eTest, LargeMessageFragmentsAndReassembles) {
  SimHost a(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  SimHost b(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");

  CpuCostSink cost;
  uint64_t stream = ca->CreateStream(eb->address());
  // ~10 MTUs of real data with a recognizable pattern.
  std::vector<uint8_t> payload(20000);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7);
  }
  ca->SendMessage(eb->address(), stream, 0, payload, &cost);
  sim_->RunFor(10 * kMsec);

  auto msg = cb->PollMessage(&cost);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->length, static_cast<int64_t>(payload.size()));
  EXPECT_EQ(msg->data, payload);
  // Fragmentation actually happened.
  EXPECT_GT(ea->stats().tx_packets, 5);
}

TEST_F(PonyE2eTest, PingPongLatencyIsMicroseconds) {
  SimHost a(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  SimHost b(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");

  PonyEchoServerTask server("echo", b.cpu(), cb.get(), /*spin=*/false);
  server.Start();
  PonyPingTask::Options options;
  options.peer = eb->address();
  options.iterations = 200;
  options.spin = false;
  PonyPingTask ping("ping", a.cpu(), ca.get(), options);
  ping.Start();

  sim_->RunFor(2000 * kMsec);
  EXPECT_TRUE(ping.done());
  EXPECT_EQ(ping.latency().count(), 200);
  // Same-rack two-sided RTT: should land well under 100us and above 2us.
  EXPECT_LT(ping.latency().Mean(), 100 * kUsec);
  EXPECT_GT(ping.latency().Mean(), 2 * kUsec);
}

TEST_F(PonyE2eTest, MessagesSurviveRandomPacketLoss) {
  fabric_->set_random_drop_probability(0.05);
  SimHost a(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  SimHost b(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");

  CpuCostSink cost;
  uint64_t stream = ca->CreateStream(eb->address());
  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    std::vector<uint8_t> payload(3000, static_cast<uint8_t>(i));
    ASSERT_NE(ca->SendMessage(eb->address(), stream, 0, payload, &cost), 0u);
  }
  sim_->RunFor(4000 * kMsec);

  int received = 0;
  while (true) {
    auto msg = cb->PollMessage(&cost);
    if (!msg.has_value()) {
      break;
    }
    ASSERT_EQ(msg->length, 3000);
    ++received;
  }
  EXPECT_EQ(received, kMessages);
  // Loss actually occurred and was repaired.
  Flow* flow = ea->FindFlow(eb->address());
  ASSERT_NE(flow, nullptr);
  EXPECT_GT(flow->stats().retransmits, 0);
}

TEST_F(PonyE2eTest, ThroughputStreamMovesGigabitsPerSecond) {
  SimHost a(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  SimHost b(sim_.get(), fabric_.get(), directory_.get(), DedicatedOptions());
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");

  PonyStreamReceiverTask receiver("rx", b.cpu(), cb.get());
  receiver.Start();
  PonyStreamSenderTask::Options options;
  options.peer = eb->address();
  options.message_bytes = 64 * 1024;
  PonyStreamSenderTask sender("tx", a.cpu(), ca.get(), options);
  sender.Start();

  sim_->RunFor(50 * kMsec);
  double gbps = static_cast<double>(receiver.bytes_received()) * 8.0 /
                ToSec(50 * kMsec) / 1e9;
  // A single engine core should sustain tens of Gbps (Table 1 shape).
  EXPECT_GT(gbps, 20.0);
  EXPECT_LT(gbps, 100.0);
}

}  // namespace
}  // namespace snap
