// Multi-tenant QoS unit + e2e tests: token-bucket math, DRR byte-deficit
// carryover and weight proportionality, WFQ weighted interleaving and tag
// reset, deterministic replay of the QoS-enabled seed sweep, and a
// two-tenant Fig. 6(b)-style rack showing noisy-neighbor isolation (a
// weight-3 victim keeps its offered goodput while a weight-1 aggressor
// offers 4x the link).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/net/fabric.h"
#include "src/packet/packet.h"
#include "src/qos/scheduler.h"
#include "src/qos/tenant.h"
#include "src/qos/token_bucket.h"
#include "src/sim/simulator.h"
#include "src/testing/seed_sweep.h"
#include "src/util/time_types.h"

namespace snap {
namespace {

// --- TokenBucket -----------------------------------------------------------

TEST(TokenBucketTest, DefaultConstructedIsUnlimited) {
  qos::TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.TryConsume(0, 1e12));
  EXPECT_TRUE(bucket.CanConsume(5 * kSec, 1e12));
  EXPECT_EQ(bucket.AvailableAt(1e12), 0);
}

TEST(TokenBucketTest, NonPositiveRateIsUnlimited) {
  qos::TokenBucket bucket(0, 100);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.TryConsume(0, 1e9));
}

TEST(TokenBucketTest, StartsFullThenRefillsAtRate) {
  qos::TokenBucket bucket(1000.0, 1000);  // 1000 B/s, 1000 B burst
  EXPECT_TRUE(bucket.TryConsume(0, 1000));
  EXPECT_FALSE(bucket.TryConsume(0, 1));
  // 500 ms at 1000 B/s accrues 500 tokens.
  EXPECT_FALSE(bucket.TryConsume(500 * kMsec, 501));
  EXPECT_TRUE(bucket.TryConsume(500 * kMsec, 500));
  EXPECT_FALSE(bucket.TryConsume(500 * kMsec, 1));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  qos::TokenBucket bucket(1000.0, 1000);
  EXPECT_TRUE(bucket.TryConsume(0, 1000));
  bucket.Refill(10 * kSec);  // would accrue 10000 without the cap
  EXPECT_DOUBLE_EQ(bucket.tokens(), 1000.0);
  EXPECT_TRUE(bucket.TryConsume(10 * kSec, 1000));
  EXPECT_FALSE(bucket.TryConsume(10 * kSec, 1));
}

TEST(TokenBucketTest, AvailableAtExtrapolatesFromLastRefill) {
  qos::TokenBucket bucket(1000.0, 1000);
  EXPECT_TRUE(bucket.TryConsume(0, 1000));
  // Empty at t=0; 250 tokens arrive at t=250ms.
  EXPECT_EQ(bucket.AvailableAt(250), 250 * kMsec);
  // After refilling at t=100ms (100 tokens banked) the answer is the same
  // instant, now expressed as 150ms past the newer anchor.
  bucket.Refill(100 * kMsec);
  EXPECT_EQ(bucket.AvailableAt(250), 250 * kMsec);
  // Already-available requests report the anchor itself.
  EXPECT_EQ(bucket.AvailableAt(50), 100 * kMsec);
}

TEST(TokenBucketTest, RefundReturnsTokensUpToBurst) {
  qos::TokenBucket bucket(1000.0, 1000);
  EXPECT_TRUE(bucket.TryConsume(0, 600));
  bucket.Refund(200);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 600.0);
  bucket.Refund(10000);
  EXPECT_DOUBLE_EQ(bucket.tokens(), 1000.0);
}

// --- DrrScheduler ----------------------------------------------------------

TEST(DrrSchedulerTest, VisitsActiveTenantsInAscendingIdOrder) {
  qos::DrrScheduler drr;
  drr.Activate(3);
  drr.Activate(1);
  drr.Activate(7);
  std::vector<qos::TenantId> visited;
  drr.RunPass([&](qos::TenantId id) -> int64_t {
    visited.push_back(id);
    return 0;  // nothing sendable
  });
  EXPECT_EQ(visited, (std::vector<qos::TenantId>{1, 3, 7}));
}

TEST(DrrSchedulerTest, ServiceIsProportionalToWeight) {
  qos::DrrScheduler drr(qos::DrrScheduler::Options{.quantum_bytes = 4000});
  drr.SetWeight(1, 3);
  drr.SetWeight(2, 1);
  drr.Activate(1);
  drr.Activate(2);
  constexpr int64_t kPacket = 1000;
  int64_t served[3] = {0, 0, 0};
  for (int pass = 0; pass < 100; ++pass) {
    drr.RunPass([&](qos::TenantId id) -> int64_t {
      served[id] += kPacket;  // always backlogged
      return kPacket;
    });
  }
  // Long-run service tracks weight exactly (packets divide the quantum, so
  // no deficit is ever stranded).
  EXPECT_EQ(served[1], 100 * 3 * 4000);
  EXPECT_EQ(served[2], 100 * 1 * 4000);
}

TEST(DrrSchedulerTest, ByteDeficitCarryoverWithIndivisiblePackets) {
  // Quantum 1000, packet 2500: a tenant overdraws into debt and must bank
  // replenishes across passes before sending again. Long-run rate is still
  // one quantum per pass.
  qos::DrrScheduler drr(qos::DrrScheduler::Options{.quantum_bytes = 1000});
  drr.Activate(1);
  constexpr int64_t kPacket = 2500;
  int64_t sent = 0;
  std::vector<int> sends_per_pass;
  for (int pass = 0; pass < 10; ++pass) {
    int sends = 0;
    drr.RunPass([&](qos::TenantId) -> int64_t {
      ++sends;
      sent += kPacket;
      return kPacket;
    });
    sends_per_pass.push_back(sends);
  }
  // Sends land on passes 1, 3, 6, 8 (0-indexed: 0, 2, 5, 7): the deficit
  // pattern 1000, -1500, 500, -2000, -1000, 0, 1000... repeats.
  EXPECT_EQ(sends_per_pass,
            (std::vector<int>{1, 0, 1, 0, 0, 1, 0, 1, 0, 0}));
  EXPECT_EQ(sent, 4 * kPacket);  // 10000 = 10 passes x quantum
  EXPECT_EQ(drr.deficit(1), 0);
}

TEST(DrrSchedulerTest, AbortPreservesDeficitsAndResumesAtCursor) {
  qos::DrrScheduler drr(qos::DrrScheduler::Options{.quantum_bytes = 1000});
  drr.Activate(1);
  drr.Activate(2);
  // Pass 1: tenant 1 sends one 400-byte packet then we abort on tenant 2.
  std::vector<qos::TenantId> visited;
  drr.RunPass([&](qos::TenantId id) -> int64_t {
    visited.push_back(id);
    if (id == 2) {
      return -1;  // external budget exhausted
    }
    return 400;
  });
  // Tenant 1 was visited (served until surplus spent), then the abort.
  EXPECT_EQ(visited.front(), 1u);
  EXPECT_EQ(visited.back(), 2u);
  EXPECT_EQ(drr.deficit(2), 1000);  // fresh replenish kept intact
  // Pass 2 resumes at the aborted tenant, which still owns its deficit.
  visited.clear();
  int64_t first_deficit_seen = -1;
  drr.RunPass([&](qos::TenantId id) -> int64_t {
    if (visited.empty()) {
      first_deficit_seen = drr.deficit(id);
    }
    visited.push_back(id);
    return 0;
  });
  EXPECT_EQ(visited.front(), 2u);
  EXPECT_EQ(first_deficit_seen, 2000);  // carried 1000 + new replenish
}

TEST(DrrSchedulerTest, EmptyTenantForfeitsSurplusButCarriesDebt) {
  qos::DrrScheduler drr(qos::DrrScheduler::Options{.quantum_bytes = 1000});
  drr.Activate(1);
  drr.Activate(2);
  // Tenant 1 returns 0 immediately: its 1000 surplus is forfeited.
  // Tenant 2 overdraws (1600 > 1000) then reports empty: debt carries.
  bool sent2 = false;
  drr.RunPass([&](qos::TenantId id) -> int64_t {
    if (id == 1) {
      return 0;
    }
    if (!sent2) {
      sent2 = true;
      return 1600;
    }
    return 0;
  });
  EXPECT_EQ(drr.deficit(1), 0);
  EXPECT_EQ(drr.deficit(2), -600);
}

TEST(DrrSchedulerTest, DeactivateForfeitsBankedCredit) {
  qos::DrrScheduler drr(qos::DrrScheduler::Options{.quantum_bytes = 1000});
  drr.Activate(1);
  drr.RunPass([](qos::TenantId) -> int64_t { return -1; });  // bank 1000
  EXPECT_EQ(drr.deficit(1), 1000);
  drr.Deactivate(1);
  EXPECT_EQ(drr.deficit(1), 0);  // idle tenants must not hoard credit
  EXPECT_EQ(drr.active_count(), 0u);
}

// --- WfqScheduler ----------------------------------------------------------

PacketPtr QosPacket(uint32_t tenant, int32_t wire_bytes, uint64_t seq = 0) {
  auto p = std::make_unique<Packet>();
  p->tenant = tenant;
  p->wire_bytes = wire_bytes;
  p->pony.seq = seq;
  return p;
}

TEST(WfqSchedulerTest, EqualWeightsAlternateWithLowerIdTieBreak) {
  qos::WfqScheduler wfq;
  for (int i = 0; i < 3; ++i) {
    wfq.Enqueue(2, QosPacket(2, 1000));
    wfq.Enqueue(1, QosPacket(1, 1000));
  }
  std::vector<uint32_t> order;
  while (!wfq.empty()) {
    order.push_back(wfq.Dequeue()->tenant);
  }
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 2, 1, 2, 1, 2}));
}

TEST(WfqSchedulerTest, DequeueRateTracksWeights) {
  qos::WfqScheduler wfq;
  wfq.SetWeight(1, 2);
  wfq.SetWeight(2, 1);
  for (int i = 0; i < 8; ++i) {
    wfq.Enqueue(1, QosPacket(1, 1000));
  }
  for (int i = 0; i < 4; ++i) {
    wfq.Enqueue(2, QosPacket(2, 1000));
  }
  std::vector<uint32_t> order;
  for (int i = 0; i < 12; ++i) {
    ASSERT_FALSE(wfq.empty());
    order.push_back(wfq.Dequeue()->tenant);
  }
  // Weight-2 tenant 1 wins two slots per three; exact SFQ schedule.
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 1, 2, 1, 1, 2, 1, 1, 2, 1, 1,
                                          2}));
}

TEST(WfqSchedulerTest, PerTenantOrderIsFifo) {
  qos::WfqScheduler wfq;
  wfq.SetWeight(1, 2);
  wfq.SetWeight(2, 1);
  for (uint64_t i = 0; i < 5; ++i) {
    wfq.Enqueue(1, QosPacket(1, 700, i));
    wfq.Enqueue(2, QosPacket(2, 1500, i));
  }
  uint64_t next_seq[3] = {0, 0, 0};
  while (!wfq.empty()) {
    PacketPtr p = wfq.Dequeue();
    EXPECT_EQ(p->pony.seq, next_seq[p->tenant]++);
  }
  EXPECT_EQ(next_seq[1], 5u);
  EXPECT_EQ(next_seq[2], 5u);
}

TEST(WfqSchedulerTest, DrainResetsVirtualTimeAndTags) {
  qos::WfqScheduler wfq;
  wfq.Enqueue(1, QosPacket(1, 1000));
  wfq.Enqueue(2, QosPacket(2, 1000));
  EXPECT_EQ(wfq.queued_bytes(), 2000);
  while (!wfq.empty()) {
    wfq.Dequeue();
  }
  EXPECT_EQ(wfq.virtual_time(), 0);
  EXPECT_EQ(wfq.queued_bytes(), 0);
  // A long-idle restart behaves exactly like a fresh scheduler.
  wfq.Enqueue(2, QosPacket(2, 1000));
  wfq.Enqueue(1, QosPacket(1, 1000));
  EXPECT_EQ(wfq.Dequeue()->tenant, 1u);
  EXPECT_EQ(wfq.Dequeue()->tenant, 2u);
}

TEST(WfqSchedulerTest, LateArrivalDoesNotWaitBehindWholeBacklog) {
  // Tenant 1 banks a backlog of ever-later finish tags; a tenant-2 packet
  // arriving after one dequeue starts at the (lagging) virtual time and so
  // is served next instead of waiting behind tenant 1's entire backlog —
  // the SFQ property that keeps an idle tenant's first packet prompt.
  qos::WfqScheduler wfq;
  for (int i = 0; i < 4; ++i) {
    wfq.Enqueue(1, QosPacket(1, 1000));
  }
  EXPECT_EQ(wfq.Dequeue()->tenant, 1u);
  wfq.Enqueue(2, QosPacket(2, 1000));
  std::vector<uint32_t> order;
  while (!wfq.empty()) {
    order.push_back(wfq.Dequeue()->tenant);
  }
  EXPECT_EQ(order, (std::vector<uint32_t>{2, 1, 1, 1}));
}

// --- Registry --------------------------------------------------------------

TEST(TenantRegistryTest, DefaultTenantAlwaysPresent) {
  qos::TenantRegistry registry;
  ASSERT_NE(registry.Find(qos::kDefaultTenant), nullptr);
  EXPECT_EQ(registry.weight(qos::kDefaultTenant), 1u);
  EXPECT_EQ(registry.DisplayName(qos::kDefaultTenant), "default");
  EXPECT_EQ(registry.DisplayName(42), "t42");  // unknown tenants
  EXPECT_EQ(registry.weight(42), 1u);
}

TEST(TenantRegistryTest, RegisterClampsWeightAndIteratesInIdOrder) {
  qos::TenantRegistry registry;
  registry.Register({.id = 5, .name = "five", .weight = 0});
  registry.Register({.id = 2, .name = "two", .weight = 7});
  EXPECT_EQ(registry.weight(5), 1u);  // clamped to >= 1
  EXPECT_EQ(registry.weight(2), 7u);
  std::vector<qos::TenantId> ids;
  registry.ForEach(
      [&](const qos::TenantSpec& spec) { ids.push_back(spec.id); });
  EXPECT_EQ(ids, (std::vector<qos::TenantId>{0, 2, 5}));
}

// --- End-to-end: QoS-enabled seed sweep ------------------------------------

TEST(QosE2eTest, AggressorSweepHoldsAllInvariantsAndReplays) {
  SeedSweepOptions opt;
  opt.num_seeds = 3;
  opt.qos_aggressor = true;
  opt.profiles = {ChaosProfile{},  // clean
                  SeedSweepRunner::AggressorTenantProfile()};
  SeedSweepRunner runner(opt);
  std::vector<SweepRunResult> results = runner.RunAll();
  ASSERT_EQ(results.size(), 6u);
  for (const SweepRunResult& r : results) {
    std::string detail = "profile=" + r.profile +
                         " seed=" + std::to_string(r.seed);
    for (const Violation& v : r.violations) {
      detail += "\n  [" + v.check + "] " + v.detail;
    }
    EXPECT_TRUE(r.ok) << detail;
    EXPECT_TRUE(r.completed) << detail;
    EXPECT_TRUE(r.replay_identical) << detail;
  }
}

// --- End-to-end: two-tenant isolation on a Fig. 6(b)-style rack ------------

struct IsolationOutcome {
  double victim_gbps = 0;
  double aggressor_gbps = 0;
  int64_t victim_p99_ns = 0;
  int64_t victim_rpcs = 0;
  int64_t aggressor_rpcs = 0;
};

// One engine on host A carries a weight-3 victim client (offered
// ~3 Gbps) and a weight-1 aggressor client fanning out to 8 server
// engines on host B at 4x the 10 Gbps uplink. With QoS off the engine
// round-robins 9 equal flows and the victim collapses to ~1/9 of the
// link; with QoS on, DRR at the engine plus WFQ at the NIC hold the
// victim at its offered rate.
IsolationOutcome RunIsolationRack(bool qos_on, uint64_t seed) {
  constexpr int kAggressorServers = 8;
  constexpr int64_t kRequestBytes = 32 * 1024;
  constexpr double kLinkGbps = 10.0;
  constexpr double kVictimGbps = 3.0;
  const SimDuration warmup = 10 * kMsec;
  const SimDuration window = 40 * kMsec;

  Simulator sim(seed);
  NicParams nic_params;
  nic_params.link_gbps = kLinkGbps;  // the contended resource
  Fabric fabric(&sim, nic_params);
  PonyDirectory directory;
  SimHostOptions options;
  options.group.dedicated_cores = {0, 1, 2, 3};
  SimHost a(&sim, &fabric, &directory, options);
  SimHost b(&sim, &fabric, &directory, options);

  PonyEngine* ea = a.CreatePonyEngine("ea");

  struct Server {
    PonyEngine* engine = nullptr;
    std::unique_ptr<PonyClient> sink;
    std::unique_ptr<PonyRpcServerTask> task;
  };
  auto make_server = [&](const std::string& name) {
    Server s;
    s.engine = b.CreatePonyEngine(name);
    s.sink = b.CreateClient(s.engine, name + "_srv");
    s.engine->SetDefaultSink(s.sink.get());
    s.task = std::make_unique<PonyRpcServerTask>(name + "_task", b.cpu(),
                                                 s.sink.get());
    s.task->Start();
    return s;
  };
  Server victim_server = make_server("vsrv");
  std::vector<Server> aggressor_servers;
  for (int i = 0; i < kAggressorServers; ++i) {
    aggressor_servers.push_back(make_server("asrv" + std::to_string(i)));
  }

  std::unique_ptr<PonyClient> victim_client = a.CreateClient(ea, "victim");
  std::unique_ptr<PonyClient> aggr_client = a.CreateClient(ea, "aggr");

  qos::TenantRegistry registry;
  if (qos_on) {
    qos::TenantSpec victim{.id = 1, .name = "victim", .weight = 3};
    qos::TenantSpec aggressor{.id = 2, .name = "aggressor", .weight = 1};
    registry.Register(victim);
    registry.Register(aggressor);
    victim_client->SetTenant(victim);
    aggr_client->SetTenant(aggressor);
    ea->EnableQos(&registry);
    a.nic()->EnableQosTx(&registry);
  }

  PonyRpcClientTask::Options vo;
  vo.peers = {victim_server.engine->address()};
  vo.request_bytes = kRequestBytes;
  vo.response_bytes = 64;
  vo.rpcs_per_sec = kVictimGbps * 1e9 / (8.0 * kRequestBytes);
  vo.rng_seed = seed + 11;
  PonyRpcClientTask victim_task("victim_task", a.cpu(),
                                victim_client.get(), vo);

  PonyRpcClientTask::Options ao;
  for (auto& s : aggressor_servers) {
    ao.peers.push_back(s.engine->address());
  }
  ao.request_bytes = kRequestBytes;
  ao.response_bytes = 64;
  ao.rpcs_per_sec = 4.0 * kLinkGbps * 1e9 / (8.0 * kRequestBytes);
  ao.max_outstanding = 256;  // bound queued memory, keep the link saturated
  ao.rng_seed = seed + 23;
  PonyRpcClientTask aggr_task("aggr_task", a.cpu(), aggr_client.get(), ao);

  victim_task.Start();
  aggr_task.Start();

  sim.RunFor(warmup);
  victim_task.ResetStats();
  aggr_task.ResetStats();
  sim.RunFor(window);

  IsolationOutcome out;
  double sec = ToSec(window);
  out.victim_rpcs = victim_task.rpcs_completed();
  out.aggressor_rpcs = aggr_task.rpcs_completed();
  out.victim_gbps = static_cast<double>(out.victim_rpcs) * kRequestBytes *
                    8.0 / sec / 1e9;
  out.aggressor_gbps = static_cast<double>(out.aggressor_rpcs) *
                       kRequestBytes * 8.0 / sec / 1e9;
  out.victim_p99_ns = victim_task.latency().P99();
  return out;
}

TEST(QosE2eTest, WeightedSchedulingIsolatesVictimFromAggressor) {
  IsolationOutcome off = RunIsolationRack(/*qos_on=*/false, /*seed=*/7);
  IsolationOutcome on = RunIsolationRack(/*qos_on=*/true, /*seed=*/7);
  std::printf("qos off: victim %.2f Gbps aggressor %.2f Gbps p99 %.0f us\n",
              off.victim_gbps, off.aggressor_gbps,
              static_cast<double>(off.victim_p99_ns) / 1e3);
  std::printf("qos on:  victim %.2f Gbps aggressor %.2f Gbps p99 %.0f us\n",
              on.victim_gbps, on.aggressor_gbps,
              static_cast<double>(on.victim_p99_ns) / 1e3);

  // Without QoS the victim collapses toward a 1/9 flow share of the link.
  EXPECT_LT(off.victim_gbps, 0.60 * 3.0)
      << "victim off=" << off.victim_gbps << " Gbps";
  // With QoS the weight-3 victim keeps >= 90% of its offered goodput.
  EXPECT_GE(on.victim_gbps, 0.90 * 3.0)
      << "victim on=" << on.victim_gbps << " Gbps";
  // Isolation is not starvation: the aggressor keeps making progress
  // (its exact share also reflects Timely backing off under the extra
  // scheduling delay, so assert a floor rather than the full leftover).
  EXPECT_GT(on.aggressor_gbps, 1.0)
      << "aggressor on=" << on.aggressor_gbps << " Gbps";
  // Queueing behind the aggressor is what hurt the victim's tail.
  EXPECT_LT(on.victim_p99_ns, off.victim_p99_ns)
      << "p99 on=" << on.victim_p99_ns << " off=" << off.victim_p99_ns;
}

TEST(QosE2eTest, IsolationRackIsDeterministic) {
  IsolationOutcome first = RunIsolationRack(/*qos_on=*/true, /*seed=*/13);
  IsolationOutcome second = RunIsolationRack(/*qos_on=*/true, /*seed=*/13);
  EXPECT_EQ(first.victim_rpcs, second.victim_rpcs);
  EXPECT_EQ(first.aggressor_rpcs, second.aggressor_rpcs);
  EXPECT_EQ(first.victim_p99_ns, second.victim_p99_ns);
}

}  // namespace
}  // namespace snap
