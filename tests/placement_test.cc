// Host-to-shard placement: the greedy traffic-aware partitioner and the
// contract that placement is a pure performance knob — simulation digests
// are byte-identical to the serial engine for every placement at every
// shard count (the placement axis of the parity gate).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/placement.h"
#include "src/testing/seed_sweep.h"

namespace snap {
namespace {

TEST(PlacementTest, RoundRobinAndContiguousCoverAllShards) {
  for (int shards : {1, 2, 3, 4}) {
    Placement rr = Placement::RoundRobin(10, shards);
    Placement contig = Placement::Contiguous(10, shards);
    ASSERT_EQ(rr.num_hosts(), 10);
    ASSERT_EQ(contig.num_hosts(), 10);
    for (int h = 0; h < 10; ++h) {
      EXPECT_GE(rr.shard(h), 0);
      EXPECT_LT(rr.shard(h), shards);
      EXPECT_EQ(rr.shard(h), h % shards);
      EXPECT_GE(contig.shard(h), 0);
      EXPECT_LT(contig.shard(h), shards);
    }
    // Contiguous keeps blocks together: shard ids are non-decreasing.
    for (int h = 1; h < 10; ++h) {
      EXPECT_GE(contig.shard(h), contig.shard(h - 1));
    }
    // Both are balanced to within the ceiling.
    EXPECT_LE(rr.max_shard_size(), (10 + shards - 1) / shards);
    EXPECT_LE(contig.max_shard_size(), (10 + shards - 1) / shards);
  }
}

TEST(PlacementTest, TrafficMatrixAccumulatesSymmetrically) {
  TrafficMatrix traffic(4);
  traffic.Add(0, 1, 10);
  traffic.Add(1, 0, 5);
  traffic.Add(2, 2, 100);  // self-traffic ignored
  EXPECT_EQ(traffic.weight(0, 1), 15);
  EXPECT_EQ(traffic.weight(1, 0), 15);
  EXPECT_EQ(traffic.weight(2, 2), 0);
  EXPECT_EQ(traffic.total_weight(0), 15);
  EXPECT_EQ(traffic.total_weight(2), 0);
}

// Adversarial star: every host couples only to host 0, so an unbounded
// greedy would pile everyone onto host 0's shard. The balance bound must
// cap shards at ceil(n / k * slack).
TEST(PlacementTest, TrafficAwareHonorsBalanceBoundOnStarMatrix) {
  const int kHosts = 16;
  const int kShards = 4;
  TrafficMatrix star(kHosts);
  for (int h = 1; h < kHosts; ++h) {
    star.Add(0, h, 1000);
  }
  Placement p = Placement::TrafficAware(star, kShards, /*balance_slack=*/1.2);
  ASSERT_EQ(p.num_hosts(), kHosts);
  for (int h = 0; h < kHosts; ++h) {
    EXPECT_GE(p.shard(h), 0);
    EXPECT_LT(p.shard(h), kShards);
  }
  // cap = ceil(16 / 4 * 1.2) = 5.
  EXPECT_LE(p.max_shard_size(), 5);
}

// Clustered matrix (3 clusters of 4 with heavy internal coupling): the
// partitioner should rediscover the clusters, cutting orders of magnitude
// less traffic than round-robin striping, which splits every cluster.
TEST(PlacementTest, TrafficAwareBeatsRoundRobinOnClusteredMatrix) {
  const int kHosts = 12;
  const int kShards = 3;
  const int kCluster = 4;
  TrafficMatrix traffic(kHosts);
  for (int a = 0; a < kHosts; ++a) {
    for (int b = a + 1; b < kHosts; ++b) {
      traffic.Add(a, b, a / kCluster == b / kCluster ? 1000 : 1);
    }
  }
  Placement aware = Placement::TrafficAware(traffic, kShards);
  Placement rr = Placement::RoundRobin(kHosts, kShards);
  int64_t aware_cross = aware.CrossShardWeight(traffic);
  int64_t rr_cross = rr.CrossShardWeight(traffic);
  EXPECT_LT(aware_cross, rr_cross);
  // Perfect partition: only the weight-1 inter-cluster pairs cross.
  // 3 cluster pairs x 4 x 4 hosts x weight 1 = 48.
  EXPECT_EQ(aware_cross, 48);
  EXPECT_EQ(aware.max_shard_size(), kCluster);
}

TEST(PlacementTest, TrafficAwareIsDeterministic) {
  TrafficMatrix traffic(9);
  for (int a = 0; a < 9; ++a) {
    for (int b = a + 1; b < 9; ++b) {
      traffic.Add(a, b, (a * 7 + b * 13) % 29);
    }
  }
  Placement first = Placement::TrafficAware(traffic, 3);
  Placement second = Placement::TrafficAware(traffic, 3);
  EXPECT_EQ(first.shard_of_host, second.shard_of_host);
}

// The parity gate's placement axis: chaos-sweep digests are byte-identical
// to the serial engine no matter where the two hosts are placed — default
// striping, both on one shard (pure eager-local delivery), or reversed
// (adversarial to the default) — at every shard count.
TEST(PlacementTest, DigestsInvariantAcrossPlacements) {
  auto run = [](int shards, std::vector<int> shard_of_host) {
    SeedSweepOptions options;
    options.num_seeds = 1;
    options.check_replay = false;
    options.shards = shards;
    options.shard_of_host = std::move(shard_of_host);
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    SweepRunResult result = runner.RunOne(31, profiles.back());
    EXPECT_TRUE(result.ok) << shards << " shards";
    return result;
  };
  SweepRunResult serial = run(1, {});
  ASSERT_TRUE(serial.completed);
  for (int shards : {2, 4, 8}) {
    const std::vector<std::vector<int>> placements = {
        {},                // default: {0, 1 % shards}
        {0, 0},            // same shard: everything eager-local
        {shards - 1, 0},   // reversed, hosts on the extreme shards
    };
    for (const auto& placement : placements) {
      SweepRunResult sharded = run(shards, placement);
      EXPECT_EQ(serial.trace_digest, sharded.trace_digest)
          << shards << " shards, placement variant";
      EXPECT_EQ(serial.delivered_messages, sharded.delivered_messages);
      EXPECT_EQ(serial.telemetry, sharded.telemetry);
    }
  }
}

}  // namespace
}  // namespace snap
