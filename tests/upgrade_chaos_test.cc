// Transparent upgrade under network chaos: an engine migrates to a new
// Snap instance while its flows are taking bursty packet loss in both
// directions. The upgrade must still complete with a sub-second blackout,
// and the stream must deliver every message exactly once, in order —
// nothing lost or duplicated across the migration.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/apps/simhost.h"
#include "src/snap/upgrade.h"
#include "src/testing/invariants.h"
#include "src/testing/seed_sweep.h"

namespace snap {
namespace {

// ~2% packet loss arriving in bursts (mean burst ~4 packets).
ChaosProfile BurstLossProfile(uint64_t seed) {
  ChaosProfile p;
  p.name = "burst-loss-2";
  p.p_good_to_bad = 0.01;
  p.p_bad_to_good = 0.25;
  p.loss_good = 0.002;
  p.loss_bad = 0.5;
  p.seed = seed;
  return p;
}

class UpgradeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(31);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {0};
    a_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
    b_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
  }

  std::unique_ptr<SnapInstance> MakeNewInstance() {
    auto inst = std::make_unique<SnapInstance>(
        "snap-v2", sim_.get(), a_->cpu(), a_->nic());
    inst->RegisterModule(std::make_unique<PonyModule>(
        sim_.get(), a_->nic(), directory_.get(), a_->options().pony,
        a_->options().timely, a_->options().app));
    EngineGroup::Options group_options;
    group_options.mode = SchedulingMode::kDedicatedCores;
    group_options.dedicated_cores = {1};
    inst->CreateGroup("default", group_options);
    return inst;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
  std::unique_ptr<SimHost> a_;
  std::unique_ptr<SimHost> b_;
};

TEST_F(UpgradeChaosTest, UpgradeUnderBurstLossLosesNothing) {
  PonyEngine* ea = a_->CreatePonyEngine("engine0");
  PonyEngine* eb = b_->CreatePonyEngine("peer");
  auto ca = a_->CreateClient(ea, "app");
  auto cb = b_->CreateClient(eb, "peer_app");

  auto chaos_to_a =
      ChaosLink::AttachToFabric(fabric_.get(), a_->host_id(),
                                BurstLossProfile(101));
  auto chaos_to_b =
      ChaosLink::AttachToFabric(fabric_.get(), b_->host_id(),
                                BurstLossProfile(202));

  InvariantChecker checker(sim_.get());
  checker.AttachFabric(fabric_.get());
  checker.AttachChaos(chaos_to_a.get());
  checker.AttachChaos(chaos_to_b.get());
  // The lister re-queries the directory so after the migration it follows
  // the FRESH engine now serving A's address (the old one is gone).
  PonyAddress addr_a = ea->address();
  PonyAddress addr_b = eb->address();
  checker.SetEngineLister([this, addr_a, addr_b] {
    std::vector<const PonyEngine*> engines;
    for (const PonyAddress& addr : {addr_a, addr_b}) {
      const PonyDirectory::Entry* entry = directory_->Find(addr);
      if (entry != nullptr && entry->engine != nullptr) {
        engines.push_back(entry->engine);
      }
    }
    return engines;
  });
  checker.WatchClient(ca.get(), "A");
  checker.WatchClient(cb.get(), "B");

  CpuCostSink cost;
  uint64_t stream = ca->CreateStream(eb->address());
  constexpr int kMessages = 60;
  constexpr int64_t kBytes = 512;
  checker.ExpectDeliveries("B", stream, kMessages);
  checker.StartSampling(100 * kUsec);

  // Sender: one message every 50us, riding straight through the upgrade
  // window (the command queue keeps accepting while the engine is in
  // blackout; anything in flight is recovered by retransmission).
  int sent = 0;
  std::function<void()> send_next = [&] {
    if (sent >= kMessages) {
      return;
    }
    auto payload = EncodeChaosPayload(
        stream, static_cast<uint64_t>(sent), kBytes);
    if (ca->SendMessage(addr_b, stream, 0, std::move(payload), &cost) != 0) {
      ++sent;
    }
    sim_->Schedule(50 * kUsec, send_next);
  };
  sim_->Schedule(50 * kUsec, send_next);

  // Kick off the upgrade mid-stream (~20 messages in).
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager::Result result;
  bool done = false;
  sim_->Schedule(1 * kMsec, [&] {
    manager.StartUpgrade(a_->snap(), v2.get(), [&](const auto& r) {
      result = r;
      done = true;
    });
  });

  sim_->RunFor(2000 * kMsec);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.engines.size(), 1u);
  // Sub-second blackout even with loss in both directions: migration cost
  // scales with state size, not with how unlucky the network is.
  EXPECT_GT(result.engines[0].blackout, 0);
  EXPECT_LT(result.engines[0].blackout, 1 * kSec);
  // The client channel survived and rebound to the fresh engine.
  PonyEngine* fresh = static_cast<PonyEngine*>(v2->engine("engine0"));
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(ca->engine(), fresh);

  // Drain: let retransmissions finish delivering the tail.
  for (int i = 0; i < 200 && checker.delivered("B", stream) < kMessages;
       ++i) {
    sim_->RunFor(10 * kMsec);
  }
  EXPECT_EQ(sent, kMessages);

  // Exactly-once, in-order, nothing lost across the migration. Quiesce is
  // not required: pure-ack/credit chatter may still trickle, but every
  // DATA byte must be home.
  checker.StopSampling();
  checker.CheckFinal(/*require_quiesce=*/false);
  EXPECT_TRUE(checker.ok()) << checker.ViolationSummary();
  EXPECT_EQ(checker.delivered("B", stream), kMessages);
  EXPECT_GT(chaos_to_a->stats().dropped + chaos_to_b->stats().dropped, 0)
      << "chaos profile never actually dropped a packet";
}

}  // namespace
}  // namespace snap
