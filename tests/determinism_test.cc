// System-level properties:
//  - determinism: identical seeds produce bit-identical end-to-end results
//    (the property transparent-upgrade debugging and CI depend on);
//  - packet conservation: every packet transmitted is delivered or
//    accounted to exactly one drop counter;
//  - message conservation under loss: bytes delivered to applications
//    never exceed bytes submitted, and eventually match them.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/stats/trace.h"
#include "src/testing/seed_sweep.h"

namespace snap {
namespace {

struct RunOutcome {
  int64_t bytes_received = 0;
  int64_t tx_packets = 0;
  int64_t rx_packets = 0;
  int64_t retransmits = 0;
  int64_t snap_cpu = 0;
  int64_t prober_p99 = 0;

  bool operator==(const RunOutcome& other) const {
    return bytes_received == other.bytes_received &&
           tx_packets == other.tx_packets &&
           rx_packets == other.rx_packets &&
           retransmits == other.retransmits &&
           snap_cpu == other.snap_cpu && prober_p99 == other.prober_p99;
  }
};

RunOutcome RunWorkload(uint64_t seed, double drop_probability,
                       EventQueueKind queue_kind = kDefaultEventQueueKind,
                       TraceRecorder* tracer = nullptr) {
  Simulator sim(seed, queue_kind);
  if (tracer != nullptr) {
    sim.set_tracer(tracer);
  }
  Fabric fabric(&sim, NicParams{});
  fabric.set_random_drop_probability(drop_probability);
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kCompactingEngines;
  SimHost a(&sim, &fabric, &directory, options);
  SimHost b(&sim, &fabric, &directory, options);
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");

  PonyStreamReceiverTask receiver("rx", b.cpu(), cb.get());
  receiver.Start();
  PonyStreamSenderTask::Options so;
  so.peer = eb->address();
  so.message_bytes = 16 * 1024;
  so.num_streams = 4;
  PonyStreamSenderTask sender("tx", a.cpu(), ca.get(), so);
  sender.Start();
  PonyEchoServerTask echo("echo", b.cpu(), cb.get());
  sim.RunFor(40 * kMsec);

  RunOutcome outcome;
  outcome.bytes_received = receiver.bytes_received();
  outcome.tx_packets = ea->stats().tx_packets;
  outcome.rx_packets = eb->stats().rx_packets;
  Flow* flow = ea->FindFlow(eb->address());
  outcome.retransmits = flow == nullptr ? 0 : flow->stats().retransmits;
  outcome.snap_cpu = a.SnapCpuNs() + b.SnapCpuNs();
  return outcome;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalOutcomes) {
  RunOutcome first = RunWorkload(1234, 0.0);
  RunOutcome second = RunWorkload(1234, 0.0);
  EXPECT_TRUE(first == second);
  EXPECT_GT(first.bytes_received, 0);
}

TEST(DeterminismTest, IdenticalSeedsIdenticalUnderLoss) {
  RunOutcome first = RunWorkload(99, 0.03);
  RunOutcome second = RunWorkload(99, 0.03);
  EXPECT_TRUE(first == second);
  EXPECT_GT(first.retransmits, 0);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Loss patterns differ, so retransmit counts almost surely differ.
  RunOutcome a = RunWorkload(1, 0.05);
  RunOutcome b = RunWorkload(2, 0.05);
  EXPECT_FALSE(a == b);
}

TEST(DeterminismTest, EventQueueImplsProduceIdenticalOutcomes) {
  // End-to-end outcomes (bytes, packets, retransmits, CPU) must not depend
  // on which event-queue implementation backs the simulator.
  EXPECT_TRUE(RunWorkload(1234, 0.0, EventQueueKind::kTimerWheel) ==
              RunWorkload(1234, 0.0, EventQueueKind::kLegacyHeap));
  EXPECT_TRUE(RunWorkload(99, 0.03, EventQueueKind::kTimerWheel) ==
              RunWorkload(99, 0.03, EventQueueKind::kLegacyHeap));
}

// The hard acceptance gate for the timer-wheel swap: the PR-1 chaos seed
// sweep (8 seeds x 2 profiles) must produce bit-identical InvariantChecker
// trace digests whether the simulator runs on the legacy binary heap or
// the hierarchical timer wheel. The digest covers every received packet's
// (time, host, flow, seq, type, crc, wire_bytes) in execution order, so
// any divergence in event ordering anywhere in the run shows up here.
TEST(DeterminismTest, TimerWheelMatchesHeapDigestsAcrossChaosSweep) {
  auto sweep = [](EventQueueKind kind) {
    SeedSweepOptions options;
    options.num_seeds = 8;
    options.first_seed = 1;
    options.check_replay = false;  // replay invariance is covered by PR-1
    options.queue_kind = kind;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    // Two contrasting profiles: pure bursty loss, and everything at once.
    std::vector<ChaosProfile> selected = {profiles.front(), profiles.back()};

    std::vector<std::pair<std::string, uint64_t>> digests;
    for (const ChaosProfile& profile : selected) {
      for (int s = 0; s < options.num_seeds; ++s) {
        SweepRunResult result =
            runner.RunOne(options.first_seed + s, profile);
        EXPECT_TRUE(result.ok) << "invariants violated under "
                               << profile.name << " seed "
                               << options.first_seed + s;
        digests.emplace_back(
            profile.name + "/" + std::to_string(options.first_seed + s),
            result.trace_digest);
      }
    }
    return digests;
  };

  auto wheel = sweep(EventQueueKind::kTimerWheel);
  auto heap = sweep(EventQueueKind::kLegacyHeap);
  ASSERT_EQ(wheel.size(), heap.size());
  for (size_t i = 0; i < wheel.size(); ++i) {
    EXPECT_EQ(wheel[i], heap[i])
        << "trace digest diverged between event-queue implementations";
  }
}

// The hard acceptance gate for the sharded simulator: the chaos seed
// sweep must produce bit-identical trace digests whether it runs on the
// serial single-Simulator engine (shards=1) or on the conservative
// parallel engine at any shard count. The digest covers every received
// packet's (time, host, flow, seq, type, crc, wire_bytes) in canonical
// order, so any divergence in delivery times, chaos decisions, retransmit
// schedules, or cross-shard exchange ordering shows up here.
TEST(DeterminismTest, ParallelShardsMatchSerialDigestsAcrossChaosSweep) {
  auto sweep = [](int shards) {
    SeedSweepOptions options;
    options.num_seeds = 8;
    options.first_seed = 1;
    options.check_replay = false;
    options.shards = shards;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    // Two contrasting profiles: pure bursty loss, and everything at once.
    std::vector<ChaosProfile> selected = {profiles.front(), profiles.back()};

    std::vector<std::pair<std::string, uint64_t>> digests;
    for (const ChaosProfile& profile : selected) {
      for (int s = 0; s < options.num_seeds; ++s) {
        SweepRunResult result = runner.RunOne(options.first_seed + s, profile);
        EXPECT_TRUE(result.ok)
            << "invariants violated under " << profile.name << " seed "
            << options.first_seed + s << " shards " << shards << ":\n";
        digests.emplace_back(
            profile.name + "/" + std::to_string(options.first_seed + s),
            result.trace_digest);
      }
    }
    return digests;
  };

  auto serial = sweep(1);
  for (int shards : {2, 4, 8}) {
    auto parallel = sweep(shards);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << "trace digest diverged between serial and " << shards
          << "-shard engines";
    }
  }
}

// The sharded engine's profiler and series sampler are pure observation:
// the delivery digest of a profiled sharded chaos run is bit-identical to
// the unprofiled serial baseline (wall-clock numbers stay confined to
// ShardedSim::Profile; the deterministic counters never feed back into
// the simulation), and the profiled run's own outputs reproduce exactly
// per seed.
TEST(DeterminismTest, ChaosSweepDigestsUnchangedByProfiling) {
  auto sweep = [](int shards, bool profiled) {
    SeedSweepOptions options;
    options.num_seeds = 4;
    options.first_seed = 1;
    options.check_replay = false;
    options.shards = shards;
    options.enable_profiling = profiled;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    std::vector<ChaosProfile> selected = {profiles.front(), profiles.back()};
    std::vector<uint64_t> digests;
    std::vector<std::map<std::string, int64_t>> telemetry;
    for (const ChaosProfile& profile : selected) {
      for (int s = 0; s < options.num_seeds; ++s) {
        SweepRunResult result = runner.RunOne(options.first_seed + s, profile);
        EXPECT_TRUE(result.ok)
            << profile.name << " seed " << options.first_seed + s;
        digests.push_back(result.trace_digest);
        telemetry.push_back(std::move(result.telemetry));
      }
    }
    return std::make_pair(digests, telemetry);
  };
  auto serial = sweep(1, false);
  auto profiled = sweep(4, true);
  auto profiled_again = sweep(4, true);
  ASSERT_EQ(serial.first.size(), profiled.first.size());
  for (size_t i = 0; i < serial.first.size(); ++i) {
    // Profiling off vs on: the simulated outcome is byte-identical.
    EXPECT_EQ(serial.first[i], profiled.first[i]) << "digest " << i;
    // Profiled runs reproduce exactly, profiler telemetry included.
    EXPECT_EQ(profiled.first[i], profiled_again.first[i]) << "digest " << i;
    EXPECT_EQ(profiled.second[i], profiled_again.second[i])
        << "profiled telemetry diverged, run " << i;
  }
}

// Fabric-level random loss with the sharded engine: the drop decision is
// a per-packet hash of (seed, src, dst, per-source departure seq), not an
// RNG draw, so the drop pattern — and therefore every retransmission and
// digest — is identical on the serial engine and on every shard count.
// (A global-RNG Bernoulli could never pass this: shards draw in
// different orders.)
TEST(DeterminismTest, FabricDropParitySerialVsSharded) {
  auto sweep = [](int shards) {
    SeedSweepOptions options;
    options.num_seeds = 4;
    options.first_seed = 1;
    options.check_replay = false;
    options.shards = shards;
    options.fabric_drop_probability = 0.02;
    SeedSweepRunner runner(options);
    // No chaos-link churn: all loss comes from the fabric's hashed drop.
    ChaosProfile calm;
    calm.name = "fabric-drop-only";

    std::vector<std::pair<std::string, uint64_t>> digests;
    int64_t retransmits = 0;
    for (int s = 0; s < options.num_seeds; ++s) {
      SweepRunResult result = runner.RunOne(options.first_seed + s, calm);
      EXPECT_TRUE(result.ok) << "invariants violated, seed "
                             << options.first_seed + s << " shards "
                             << shards;
      EXPECT_TRUE(result.completed);
      retransmits += result.retransmits;
      digests.emplace_back(std::to_string(options.first_seed + s),
                           result.trace_digest);
    }
    return std::make_pair(digests, retransmits);
  };

  auto [serial, serial_retx] = sweep(1);
  // The hashed drop actually dropped something: recovery ran.
  EXPECT_GT(serial_retx, 0);
  for (int shards : {2, 4}) {
    auto [parallel, parallel_retx] = sweep(shards);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << "drop-enabled digest diverged between serial and " << shards
          << "-shard engines";
    }
    EXPECT_EQ(serial_retx, parallel_retx);
  }
}

// The flight-recorder determinism contract, both directions:
//  - same seed => byte-identical trace JSON across runs;
//  - attaching a tracer never perturbs simulation outcomes.
TEST(DeterminismTest, SameSeedProducesByteIdenticalTrace) {
  TraceRecorder first_trace;
  TraceRecorder second_trace;
  RunOutcome first =
      RunWorkload(1234, 0.0, kDefaultEventQueueKind, &first_trace);
  RunOutcome second =
      RunWorkload(1234, 0.0, kDefaultEventQueueKind, &second_trace);
  EXPECT_TRUE(first == second);
  ASSERT_GT(first_trace.size(), 1000u) << "trace suspiciously small";
  EXPECT_EQ(first_trace.size(), second_trace.size());
  EXPECT_EQ(first_trace.ToJson(), second_trace.ToJson());
}

TEST(DeterminismTest, TracingDoesNotPerturbOutcomes) {
  TraceRecorder tracer;
  RunOutcome traced = RunWorkload(99, 0.03, kDefaultEventQueueKind, &tracer);
  RunOutcome untraced = RunWorkload(99, 0.03);
  EXPECT_TRUE(traced == untraced);
  EXPECT_GT(traced.retransmits, 0);
}

// Chaos-sweep digests cover every received packet in execution order; they
// must be bit-identical whether tracing is enabled or disabled, because
// recording draws no randomness and never feeds back into the simulation.
TEST(DeterminismTest, ChaosSweepDigestsUnchangedByTracing) {
  auto sweep = [](bool enable_trace) {
    SeedSweepOptions options;
    options.num_seeds = 4;
    options.first_seed = 1;
    options.check_replay = false;
    options.enable_trace = enable_trace;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    std::vector<ChaosProfile> selected = {profiles.front(), profiles.back()};

    std::vector<std::pair<std::string, uint64_t>> digests;
    for (const ChaosProfile& profile : selected) {
      for (int s = 0; s < options.num_seeds; ++s) {
        SweepRunResult result = runner.RunOne(options.first_seed + s, profile);
        EXPECT_TRUE(result.ok)
            << "invariants violated under " << profile.name << " seed "
            << options.first_seed + s << " trace=" << enable_trace;
        digests.emplace_back(
            profile.name + "/" + std::to_string(options.first_seed + s),
            result.trace_digest);
      }
    }
    return digests;
  };

  auto untraced = sweep(false);
  auto traced = sweep(true);
  ASSERT_EQ(untraced.size(), traced.size());
  for (size_t i = 0; i < untraced.size(); ++i) {
    EXPECT_EQ(untraced[i], traced[i])
        << "chaos digest changed when tracing was enabled";
  }
}

// Conservation: every transmitted packet is delivered or counted dropped.
class ConservationTest : public ::testing::TestWithParam<double> {};

TEST_P(ConservationTest, PacketsNeverVanish) {
  double drop_probability = GetParam();
  Simulator sim(7);
  Fabric fabric(&sim, NicParams{});
  fabric.set_random_drop_probability(drop_probability);
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  SimHost a(&sim, &fabric, &directory, options);
  SimHost b(&sim, &fabric, &directory, options);
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");
  PonyStreamReceiverTask receiver("rx", b.cpu(), cb.get());
  receiver.Start();
  PonyStreamSenderTask::Options so;
  so.peer = eb->address();
  so.message_bytes = 8 * 1024;
  PonyStreamSenderTask sender("tx", a.cpu(), ca.get(), so);
  sender.Start();
  sim.RunFor(30 * kMsec);

  // Fabric-level conservation.
  const Fabric::Stats& fs = fabric.stats();
  int64_t wire_tx =
      a.nic()->stats().tx_packets + b.nic()->stats().tx_packets;
  int64_t wire_rx =
      a.nic()->stats().rx_packets + b.nic()->stats().rx_packets;
  // Packets still in flight at the cut are bounded by ring sizes.
  int64_t accounted = wire_rx + fs.dropped_random + fs.dropped_queue_full +
                      fs.dropped_bad_address;
  EXPECT_GE(wire_tx, accounted - 8);
  EXPECT_LE(wire_tx - accounted, 2048);
  if (drop_probability > 0) {
    EXPECT_GT(fs.dropped_random, 0);
  }
  // Application-level: never deliver more than was submitted.
  EXPECT_LE(receiver.bytes_received(), sender.bytes_submitted());
}

INSTANTIATE_TEST_SUITE_P(DropRates, ConservationTest,
                         ::testing::Values(0.0, 0.01, 0.1));

}  // namespace
}  // namespace snap
