// Deterministic model checking of the lock-free queue primitives
// (src/verify/). Each test enumerates every interleaving (within the
// preemption bound) of small producer/consumer programs against the real
// queue templates instantiated with verify::ModelAtomics, checking the
// queues' core claims: no lost or duplicated elements, FIFO per producer,
// no out-of-thin-air reads (a load can only observe a value some store
// actually wrote), and safe slot reuse across capacity wraparound.
//
// Deliberately broken queue variants (a missing release on the publish
// store, a missing acquire on the index refresh) prove the checker finds
// seeded ordering bugs and emits a replayable counterexample schedule.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/queue/mailbox.h"
#include "src/queue/mpsc_queue.h"
#include "src/queue/spsc_ring.h"
#include "src/verify/model.h"
#include "src/verify/model_atomic.h"

namespace snap {
namespace {

using verify::Explore;
using verify::JoinAll;
using verify::ModelAssert;
using verify::Options;
using verify::Result;
using verify::Spawn;
using verify::Yield;

using ModelRing = SpscRing<int, verify::ModelAtomics>;
using ModelMpscQueue = BasicMpscQueue<verify::ModelAtomics>;
using ModelMpscNode = BasicMpscNode<verify::ModelAtomics>;
using ModelMailbox = BasicEngineMailbox<verify::ModelAtomics>;

void ReportSchedules(const char* what, const Result& r) {
  std::printf("[ model ] %s: explored %ld schedules%s\n", what, r.schedules,
              r.exhausted ? " (exhausted)" : "");
  ::testing::Test::RecordProperty(what, static_cast<int>(r.schedules));
}

// --- SpscRing: correctness under all interleavings ------------------------

TEST(ModelSpscRingTest, NoLossNoDupFifoAcrossWraparound) {
  Options opts;
  opts.max_preemptions = 2;
  Result r = Explore(opts, [] {
    // Capacity 2, three values: the third push reuses slot 0, so every
    // schedule crosses the wraparound boundary.
    ModelRing ring(2);
    std::vector<int> popped;
    int pushed = 0;
    Spawn([&] {
      for (int v = 0; v < 3; ++v) {
        int attempts = 0;
        while (!ring.TryPush(v)) {
          // Bounded retry keeps the DFS finite; two attempts still cover
          // the observe-stale-head-then-refresh path.
          if (++attempts > 2) return;
          Yield();
        }
        ++pushed;
      }
    });
    Spawn([&] {
      int empty_polls = 0;
      while (static_cast<int>(popped.size()) < 3 && empty_polls < 4) {
        std::optional<int> v = ring.TryPop();
        if (v.has_value()) {
          popped.push_back(*v);
        } else {
          ++empty_polls;
          Yield();
        }
      }
    });
    JoinAll();
    // Drain what the consumer gave up on; JoinAll establishes the
    // happens-before edge that makes this safe.
    while (std::optional<int> v = ring.TryPop()) {
      popped.push_back(*v);
    }
    // No loss, no duplication, and FIFO: exactly the pushed prefix, in
    // order. Values can only come from actual pushes (no out-of-thin-air
    // reads), so popped[i] == i is the full check.
    ModelAssert(static_cast<int>(popped.size()) == pushed,
                "popped count != pushed count (lost or duplicated element)");
    for (size_t i = 0; i < popped.size(); ++i) {
      ModelAssert(popped[i] == static_cast<int>(i),
                  "FIFO order violated or out-of-thin-air value");
    }
  });
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.exhausted) << "exploration hit a safety cap";
  EXPECT_GT(r.schedules, 100) << "suspiciously small schedule space";
  ReportSchedules("spsc_wraparound", r);
}

TEST(ModelSpscRingTest, CapacityOneRingAlternatesSafely) {
  // A one-slot ring maximally stresses the cached_head_/cached_tail_
  // staleness paths: every push after the first must observe the
  // consumer's head release, every pop must observe the tail release.
  Options opts;
  opts.max_preemptions = 2;
  Result r = Explore(opts, [] {
    ModelRing ring(1);
    std::vector<int> popped;
    int pushed = 0;
    Spawn([&] {
      for (int v = 0; v < 2; ++v) {
        int attempts = 0;
        while (!ring.TryPush(v)) {
          if (++attempts > 2) return;
          Yield();
        }
        ++pushed;
      }
    });
    Spawn([&] {
      int empty_polls = 0;
      while (static_cast<int>(popped.size()) < 2 && empty_polls < 4) {
        std::optional<int> v = ring.TryPop();
        if (v.has_value()) {
          popped.push_back(*v);
        } else {
          ++empty_polls;
          Yield();
        }
      }
    });
    JoinAll();
    while (std::optional<int> v = ring.TryPop()) {
      popped.push_back(*v);
    }
    ModelAssert(static_cast<int>(popped.size()) == pushed,
                "popped count != pushed count");
    for (size_t i = 0; i < popped.size(); ++i) {
      ModelAssert(popped[i] == static_cast<int>(i), "FIFO order violated");
    }
    ModelAssert(!ring.TryPop().has_value(), "ring not empty after drain");
  });
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.exhausted);
  ReportSchedules("spsc_capacity_one", r);
}

// --- MpscQueue: multi-producer delivery ------------------------------------

struct ModelTestNode {
  ModelMpscNode node;
  verify::ModelCell<int> value;
};

TEST(ModelMpscQueueTest, TwoProducersDeliverEverythingPerProducerFifo) {
  Options opts;
  opts.max_preemptions = 2;
  Result r = Explore(opts, [] {
    ModelMpscQueue queue;
    // Producer 0 pushes nodes 0,1 (values 0,1); producer 1 pushes node 2
    // (value 100). Intrusive nodes carry race-checked payload cells.
    std::array<ModelTestNode, 3> nodes;
    std::vector<int> popped;
    Spawn([&] {
      for (int i = 0; i < 2; ++i) {
        nodes[i].value.Set(i);
        queue.Push(&nodes[i].node);
      }
    });
    Spawn([&] {
      nodes[2].value.Set(100);
      queue.Push(&nodes[2].node);
    });
    Spawn([&] {
      int empty_polls = 0;
      while (static_cast<int>(popped.size()) < 3 && empty_polls < 4) {
        ModelMpscNode* n = queue.Pop();
        if (n == nullptr) {
          ++empty_polls;
          Yield();
          continue;
        }
        for (auto& cand : nodes) {
          if (&cand.node == n) popped.push_back(cand.value.Get());
        }
      }
    });
    JoinAll();
    while (ModelMpscNode* n = queue.Pop()) {
      for (auto& cand : nodes) {
        if (&cand.node == n) popped.push_back(cand.value.Get());
      }
    }
    ModelAssert(popped.size() == 3, "element lost or duplicated");
    // Exactly-once delivery of each value.
    int seen0 = 0, seen1 = 0, seen100 = 0;
    size_t pos0 = 0, pos1 = 0;
    for (size_t i = 0; i < popped.size(); ++i) {
      if (popped[i] == 0) { ++seen0; pos0 = i; }
      if (popped[i] == 1) { ++seen1; pos1 = i; }
      if (popped[i] == 100) ++seen100;
    }
    ModelAssert(seen0 == 1 && seen1 == 1 && seen100 == 1,
                "each pushed value must be delivered exactly once");
    // FIFO per producer: producer 0's value 0 precedes its value 1.
    ModelAssert(pos0 < pos1, "per-producer FIFO violated");
    ModelAssert(queue.empty(), "queue not empty after drain");
  });
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.exhausted);
  EXPECT_GT(r.schedules, 100);
  ReportSchedules("mpsc_two_producers", r);
}

// --- EngineMailbox: depth-1 exactly-once hand-off ---------------------------

TEST(ModelMailboxTest, PostersAndEngineAgreeOnExecutedCount) {
  Options opts;
  opts.max_preemptions = 2;
  Result r = Explore(opts, [] {
    ModelMailbox mailbox;
    int executed = 0;
    int posted = 0;
    Spawn([&] {
      for (int i = 0; i < 2; ++i) {
        int attempts = 0;
        while (!mailbox.Post([&executed] { ++executed; })) {
          if (++attempts > 2) return;
          Yield();
        }
        ++posted;
      }
    });
    Spawn([&] {
      int idle = 0;
      while (idle < 4) {
        if (!mailbox.RunPending()) {
          ++idle;
          Yield();
        }
      }
    });
    JoinAll();
    while (mailbox.RunPending()) {
    }
    ModelAssert(executed == posted,
                "every accepted Post must run exactly once");
    ModelAssert(!mailbox.pending(), "mailbox still pending after drain");
  });
  EXPECT_TRUE(r.ok) << r.message;
  EXPECT_TRUE(r.exhausted);
  ReportSchedules("mailbox_exactly_once", r);
}

// --- seeded bugs: the checker must find them -------------------------------

// SpscRing with the publish store downgraded to relaxed: the consumer can
// observe the new tail without the slot write being visible. On real
// weakly-ordered hardware this loses or corrupts elements; the model
// checker reports it as a data race on the payload cell.
template <typename T, typename Policy>
class RelaxedPublishRing {
 public:
  explicit RelaxedPublishRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  bool TryPush(T value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_].Set(std::move(value));
    tail_.store(tail + 1, std::memory_order_relaxed);  // BUG: no release
    return true;
  }

  std::optional<T> TryPop() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;
    }
    T value = slots_[head & mask_].Take();
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

 private:
  std::vector<typename Policy::template Cell<T>> slots_;
  size_t mask_ = 0;
  typename Policy::template Atomic<size_t> head_{0};
  size_t cached_tail_ = 0;
  typename Policy::template Atomic<size_t> tail_{0};
  size_t cached_head_ = 0;
};

TEST(ModelSeededBugTest, RelaxedPublishIsCaughtAndReplays) {
  auto body = [] {
    RelaxedPublishRing<int, verify::ModelAtomics> ring(2);
    Spawn([&] { ring.TryPush(7); });
    Spawn([&] {
      int empty_polls = 0;
      while (empty_polls < 4) {
        if (ring.TryPop().has_value()) return;
        ++empty_polls;
        Yield();
      }
    });
    JoinAll();
  };
  Options opts;
  opts.max_preemptions = 2;
  Result r = Explore(opts, body);
  EXPECT_FALSE(r.ok) << "checker failed to find the seeded relaxed-publish "
                        "bug";
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  EXPECT_FALSE(r.trace.empty());
  std::printf("[ model ] seeded relaxed-publish bug found after %ld "
              "schedules; counterexample schedule \"%s\"\n",
              r.schedules, r.trace.c_str());

  // The counterexample replays: the exact failing schedule reproduces the
  // violation in a single run.
  Options replay;
  replay.replay = r.trace;
  Result r2 = Explore(replay, body);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.schedules, 1);
  EXPECT_NE(r2.message.find("data race"), std::string::npos);
}

// SpscRing with the producer's head refresh downgraded to relaxed: the
// producer can reuse a slot without observing that the consumer finished
// reading it — a wraparound overwrite race.
template <typename T, typename Policy>
class RelaxedHeadRefreshRing {
 public:
  explicit RelaxedHeadRefreshRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  bool TryPush(T value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_relaxed);  // BUG: no acquire
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_].Set(std::move(value));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> TryPop() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;
    }
    T value = slots_[head & mask_].Take();
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

 private:
  std::vector<typename Policy::template Cell<T>> slots_;
  size_t mask_ = 0;
  typename Policy::template Atomic<size_t> head_{0};
  size_t cached_tail_ = 0;
  typename Policy::template Atomic<size_t> tail_{0};
  size_t cached_head_ = 0;
};

TEST(ModelSeededBugTest, RelaxedHeadRefreshWraparoundOverwriteIsCaught) {
  Options opts;
  opts.max_preemptions = 2;
  Result r = Explore(opts, [] {
    RelaxedHeadRefreshRing<int, verify::ModelAtomics> ring(1);
    Spawn([&] {
      for (int v = 0; v < 2; ++v) {
        int attempts = 0;
        while (!ring.TryPush(v)) {
          if (++attempts > 4) return;
          Yield();
        }
      }
    });
    Spawn([&] {
      int empty_polls = 0;
      int got = 0;
      while (got < 2 && empty_polls < 8) {
        if (ring.TryPop().has_value()) {
          ++got;
        } else {
          ++empty_polls;
          Yield();
        }
      }
    });
    JoinAll();
  });
  EXPECT_FALSE(r.ok) << "checker failed to find the seeded relaxed head "
                        "refresh bug";
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  EXPECT_FALSE(r.trace.empty());
  std::printf("[ model ] seeded head-refresh bug found after %ld schedules\n",
              r.schedules);
}

// MpscQueue with the next-pointer publish downgraded to relaxed: the
// consumer can traverse to a node whose payload write is not yet visible.
template <typename Policy>
class RelaxedLinkMpscQueue {
 public:
  using Node = BasicMpscNode<Policy>;

  RelaxedLinkMpscQueue() : head_(&stub_), tail_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }

  void Push(Node* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_relaxed);  // BUG: no release
  }

  Node* Pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    Node* head = head_.load(std::memory_order_acquire);
    if (tail != head) return nullptr;
    Push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    return nullptr;
  }

 private:
  typename Policy::template Atomic<Node*> head_;
  Node* tail_;
  Node stub_;
};

TEST(ModelSeededBugTest, RelaxedNextLinkIsCaught) {
  // Two nodes matter: popping the *first* of two queued nodes takes the
  // early next-pointer path, which relies on the (here missing) release on
  // the link store. A single node is popped via head_'s acq_rel exchange,
  // which would mask the bug.
  Options opts;
  opts.max_preemptions = 2;
  Result r = Explore(opts, [] {
    RelaxedLinkMpscQueue<verify::ModelAtomics> queue;
    std::array<ModelTestNode, 2> nodes;
    Spawn([&] {
      for (int i = 0; i < 2; ++i) {
        nodes[i].value.Set(42 + i);
        queue.Push(&nodes[i].node);
      }
    });
    Spawn([&] {
      int empty_polls = 0;
      while (empty_polls < 6) {
        ModelMpscNode* n = queue.Pop();
        if (n != nullptr) {
          for (auto& cand : nodes) {
            if (&cand.node == n) {
              ModelAssert(cand.value.Get() >= 42, "payload not visible");
            }
          }
          return;
        }
        ++empty_polls;
        Yield();
      }
    });
    JoinAll();
  });
  EXPECT_FALSE(r.ok) << "checker failed to find the seeded relaxed-link bug";
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  std::printf("[ model ] seeded mpsc relaxed-link bug found after %ld "
              "schedules\n",
              r.schedules);
}

// --- checker self-tests -----------------------------------------------------

TEST(ModelRuntimeTest, AssertionFailuresCarryReplayableTrace) {
  Options opts;
  Result r = Explore(opts, [] {
    int x = 0;
    Spawn([&x] { x = 1; });
    JoinAll();
    ModelAssert(x == 2, "seeded assertion failure");
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("seeded assertion failure"), std::string::npos);
}

TEST(ModelRuntimeTest, PreemptionBoundLimitsScheduleGrowth) {
  // The same program explored with widening preemption budgets must visit
  // a monotonically growing schedule space.
  auto run = [](int preemptions) {
    Options opts;
    opts.max_preemptions = preemptions;
    return Explore(opts, [] {
      SpscRing<int, verify::ModelAtomics> ring(2);
      Spawn([&] {
        ring.TryPush(1);
        ring.TryPush(2);
      });
      Spawn([&] {
        ring.TryPop();
        ring.TryPop();
      });
      JoinAll();
    });
  };
  Result r0 = run(0);
  Result r1 = run(1);
  Result r2 = run(2);
  EXPECT_TRUE(r0.ok) << r0.message;
  EXPECT_TRUE(r1.ok) << r1.message;
  EXPECT_TRUE(r2.ok) << r2.message;
  EXPECT_TRUE(r2.exhausted);
  EXPECT_LE(r0.schedules, r1.schedules);
  EXPECT_LE(r1.schedules, r2.schedules);
  std::printf("[ model ] preemption bound 0/1/2 -> %ld/%ld/%ld schedules\n",
              r0.schedules, r1.schedules, r2.schedules);
}

TEST(ModelRuntimeTest, MissingJoinAllIsReported) {
  Options opts;
  opts.max_schedules = 1;
  Result r = Explore(opts, [] {
    // Forgetting JoinAll would let the body's locals die under a live
    // virtual thread; the runtime reports it instead of crashing.
    [[maybe_unused]] static int sink = 0;
    Spawn([] { sink = 1; });
  });
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message.find("JoinAll"), std::string::npos) << r.message;
}

}  // namespace
}  // namespace snap
