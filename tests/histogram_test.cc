#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/stats/histogram.h"
#include "src/stats/telemetry.h"
#include "src/stats/time_series.h"
#include "src/util/rng.h"
#include "src/util/time_types.h"

namespace snap {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.Mean(), 1000);
  // Bucketed value has bounded relative error.
  EXPECT_NEAR(static_cast<double>(h.P50()), 1000.0, 1000.0 / 16);
}

TEST(HistogramTest, ExactForSmallValues) {
  // Values below the sub-bucket count are stored exactly.
  Histogram h;
  for (int i = 0; i <= 31; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
  EXPECT_EQ(h.Percentile(100), 31);
}

TEST(HistogramTest, PercentilesOfUniformDistribution) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Record(i);
  }
  // Each percentile lands within one bucket width (~3%) of truth.
  EXPECT_NEAR(static_cast<double>(h.P50()), 5000, 5000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.P90()), 9000, 9000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.P99()), 9900, 9900 * 0.04);
}

TEST(HistogramTest, PercentileMonotonicity) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBounded(1000000)));
  }
  int64_t prev = 0;
  for (double p = 0; p <= 100; p += 0.5) {
    int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "at percentile " << p;
    prev = v;
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-500);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, RecordNMultiplies) {
  Histogram h;
  h.RecordN(100, 50);
  EXPECT_EQ(h.count(), 50);
  EXPECT_EQ(h.Mean(), 100);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Record(INT64_MAX / 2);
  h.Record(1);
  EXPECT_EQ(h.count(), 2);
  EXPECT_GE(h.Percentile(100), INT64_MAX / 4);
}

// Property: for many random datasets, histogram percentile approximates the
// true percentile within the bucket's relative-error budget.
class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, ApproximatesTruePercentiles) {
  Rng rng(GetParam());
  Histogram h;
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = static_cast<int64_t>(
        rng.NextExponential(50000.0));  // latency-like distribution
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    size_t index = std::min(
        values.size() - 1,
        static_cast<size_t>(p / 100.0 * static_cast<double>(values.size())));
    double truth = static_cast<double>(values[index]);
    double est = static_cast<double>(h.Percentile(p));
    EXPECT_NEAR(est, truth, std::max(32.0, truth * 0.05))
        << "p" << p << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- TimeSeries -----------------------------------------------------------

TEST(TimeSeriesTest, FoldsSamplesIntoBuckets) {
  TimeSeries series(1 * kMsec, 8);
  series.Record(100 * kUsec, 1000);  // bucket 0
  series.Record(1100 * kUsec, 1500);  // bucket 1
  series.Record(1200 * kUsec, 500);   // bucket 1 again
  ASSERT_EQ(series.num_buckets(), 2);
  EXPECT_EQ(series.bucket(0).count, 1);
  EXPECT_EQ(series.bucket(0).sum, 1000);
  EXPECT_EQ(series.bucket(1).count, 2);
  EXPECT_EQ(series.bucket(1).sum, 2000);
  EXPECT_EQ(series.bucket(1).min, 500);
  EXPECT_EQ(series.bucket(1).max, 1500);
  EXPECT_EQ(series.bucket(1).last, 500);
  EXPECT_NEAR(series.RatePerSec(0), 1e6, 1);  // 1000 per ms
  EXPECT_NEAR(series.RatePerSec(1), 2e6, 1);
  EXPECT_NEAR(series.MaxRatePerSec(), 2e6, 1);
  EXPECT_NEAR(series.MeanRatePerSec(), 1.5e6, 1);
}

TEST(TimeSeriesTest, SkippedBucketsStayEmpty) {
  TimeSeries series(1 * kMsec, 8);
  series.Record(0, 100);
  series.Record(3 * kMsec + 1, 900);  // skips buckets 1 and 2
  ASSERT_EQ(series.num_buckets(), 4);
  EXPECT_TRUE(series.bucket(1).empty());
  EXPECT_TRUE(series.bucket(2).empty());
  EXPECT_EQ(series.bucket(3).sum, 900);
  EXPECT_EQ(series.total_count(), 2);
  EXPECT_EQ(series.total_sum(), 1000);
}

TEST(TimeSeriesTest, DownsamplesPastTheWindow) {
  // 4 buckets of 1ms: recording at 5ms forces a pairwise merge to 2ms
  // buckets. Memory never exceeds max_buckets; totals are preserved.
  TimeSeries series(1 * kMsec, 4);
  for (int i = 0; i < 4; ++i) {
    series.Record(i * kMsec, 10 * (i + 1));
  }
  ASSERT_EQ(series.num_buckets(), 4);
  series.Record(5 * kMsec, 99);
  EXPECT_EQ(series.bucket_width(), 2 * kMsec);
  EXPECT_EQ(series.downsamples(), 1);
  ASSERT_LE(series.num_buckets(), 4);
  // Old buckets merged pairwise: {10,20} -> 30, {30,40} -> 70.
  EXPECT_EQ(series.bucket(0).sum, 30);
  EXPECT_EQ(series.bucket(0).count, 2);
  EXPECT_EQ(series.bucket(0).last, 20);
  EXPECT_EQ(series.bucket(1).sum, 70);
  EXPECT_EQ(series.bucket(2).sum, 99);  // [4ms, 6ms)
  EXPECT_EQ(series.total_sum(), 100 + 99);
  EXPECT_EQ(series.total_count(), 5);
}

TEST(TimeSeriesTest, MemoryStaysBoundedOverLongRuns) {
  TimeSeries series(1 * kUsec, 16);
  for (int64_t i = 0; i < 100000; ++i) {
    series.Record(i * 7 * kUsec, 1);
  }
  EXPECT_LE(series.num_buckets(), 16);
  EXPECT_EQ(series.total_count(), 100000);
  EXPECT_EQ(series.total_sum(), 100000);
  EXPECT_GT(series.downsamples(), 10);
}

TEST(TimeSeriesTest, JsonIsByteStable) {
  auto build = [] {
    TimeSeries series(1 * kMsec, 4);
    series.Record(100, 5);
    series.Record(2 * kMsec, 7);
    return series.ToJson();
  };
  std::string a = build();
  std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"width_ns\":1000000"), std::string::npos);
  EXPECT_NE(a.find("{}"), std::string::npos);  // empty bucket elided
}

}  // namespace
}  // namespace snap
