#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/stats/histogram.h"
#include "src/stats/metrics.h"
#include "src/stats/telemetry.h"
#include "src/util/rng.h"
#include "src/util/time_types.h"

namespace snap {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Mean(), 0);
  EXPECT_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.Mean(), 1000);
  // Bucketed value has bounded relative error.
  EXPECT_NEAR(static_cast<double>(h.P50()), 1000.0, 1000.0 / 16);
}

TEST(HistogramTest, ExactForSmallValues) {
  // Values below the sub-bucket count are stored exactly.
  Histogram h;
  for (int i = 0; i <= 31; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
  EXPECT_EQ(h.Percentile(100), 31);
}

TEST(HistogramTest, PercentilesOfUniformDistribution) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) {
    h.Record(i);
  }
  // Each percentile lands within one bucket width (~3%) of truth.
  EXPECT_NEAR(static_cast<double>(h.P50()), 5000, 5000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.P90()), 9000, 9000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.P99()), 9900, 9900 * 0.04);
}

TEST(HistogramTest, PercentileMonotonicity) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBounded(1000000)));
  }
  int64_t prev = 0;
  for (double p = 0; p <= 100; p += 0.5) {
    int64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "at percentile " << p;
    prev = v;
  }
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-500);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
}

TEST(HistogramTest, RecordNMultiplies) {
  Histogram h;
  h.RecordN(100, 50);
  EXPECT_EQ(h.count(), 50);
  EXPECT_EQ(h.Mean(), 100);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, LargeValuesDoNotOverflow) {
  Histogram h;
  h.Record(INT64_MAX / 2);
  h.Record(1);
  EXPECT_EQ(h.count(), 2);
  EXPECT_GE(h.Percentile(100), INT64_MAX / 4);
}

// Property: for many random datasets, histogram percentile approximates the
// true percentile within the bucket's relative-error budget.
class HistogramAccuracyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramAccuracyTest, ApproximatesTruePercentiles) {
  Rng rng(GetParam());
  Histogram h;
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = static_cast<int64_t>(
        rng.NextExponential(50000.0));  // latency-like distribution
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    size_t index = std::min(
        values.size() - 1,
        static_cast<size_t>(p / 100.0 * static_cast<double>(values.size())));
    double truth = static_cast<double>(values[index]);
    double est = static_cast<double>(h.Percentile(p));
    EXPECT_NEAR(est, truth, std::max(32.0, truth * 0.05))
        << "p" << p << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramAccuracyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- RateSeries -----------------------------------------------------------

TEST(RateSeriesTest, EmitsOneRatePerWindow) {
  RateSeries series(1 * kMsec);
  series.Sample(0, 0);
  series.Sample(1 * kMsec, 1000);
  series.Sample(2 * kMsec, 3000);
  ASSERT_EQ(series.rates_per_sec().size(), 2u);
  EXPECT_NEAR(series.rates_per_sec()[0], 1e6, 1);     // 1000 per ms
  EXPECT_NEAR(series.rates_per_sec()[1], 2e6, 1);
  EXPECT_NEAR(series.MaxRate(), 2e6, 1);
  EXPECT_NEAR(series.MeanRate(), 1.5e6, 1);
}

TEST(RateSeriesTest, SkippedWindowsSpreadTheDelta) {
  RateSeries series(1 * kMsec);
  series.Sample(0, 0);
  // Jump three windows at once: the delta is spread uniformly across all
  // three crossed windows — no spurious spike in the first one.
  series.Sample(3 * kMsec, 900);
  ASSERT_EQ(series.rates_per_sec().size(), 3u);
  EXPECT_NEAR(series.rates_per_sec()[0], 3e5, 1);
  EXPECT_NEAR(series.rates_per_sec()[1], 3e5, 1);
  EXPECT_NEAR(series.rates_per_sec()[2], 3e5, 1);
  // The series integral equals the total count: 3 windows * 300/ms * 1ms.
  EXPECT_NEAR(series.MeanRate() * 3e-3, 900, 1e-6);
}

TEST(RateSeriesTest, SpreadWindowsResumeNormalAttribution) {
  RateSeries series(1 * kMsec);
  series.Sample(0, 0);
  series.Sample(2 * kMsec, 400);   // two windows @ 200/ms
  series.Sample(3 * kMsec, 1400);  // one window @ 1000/ms
  ASSERT_EQ(series.rates_per_sec().size(), 3u);
  EXPECT_NEAR(series.rates_per_sec()[0], 2e5, 1);
  EXPECT_NEAR(series.rates_per_sec()[1], 2e5, 1);
  EXPECT_NEAR(series.rates_per_sec()[2], 1e6, 1);
  EXPECT_NEAR(series.MaxRate(), 1e6, 1);
}

}  // namespace
}  // namespace snap
