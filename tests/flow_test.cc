// Flow-layer unit tests: sequencing, acks, dedup, fast retransmit, RTO,
// pacing, credits, and state serialization — exercised directly, without
// engines or a fabric.
#include <gtest/gtest.h>

#include "src/pony/flow.h"

namespace snap {
namespace {

class FlowTest : public ::testing::Test {
 protected:
  FlowTest()
      : key_{1, 10},
        flow_(key_, 0, 5, 2, TimelyParams{}, &params_) {}

  TxRecord DataRecord(int payload = 1000, bool credit = true) {
    TxRecord rec;
    rec.header.type = PonyPacketType::kData;
    rec.header.op_id = 1;
    rec.header.msg_length = static_cast<uint32_t>(payload);
    rec.payload_bytes = payload;
    rec.uses_credit = credit;
    return rec;
  }

  // Builds an incoming packet as the peer would send it.
  Packet PeerPacket(uint64_t seq, uint64_t ack,
                    PonyPacketType type = PonyPacketType::kData) {
    Packet p;
    p.src_host = 1;
    p.pony.version = 2;
    p.pony.flow_id = (10ull << 32) | 5ull;  // peer engine 10 -> us (5)
    p.pony.seq = seq;
    p.pony.ack = ack;
    p.pony.type = type;
    p.pony.tx_timestamp = type == PonyPacketType::kData ? 1000 : 0;
    p.payload_bytes = 100;
    p.wire_bytes = 164;
    return p;
  }

  PonyParams params_;
  FlowKey key_;
  Flow flow_;
};

TEST_F(FlowTest, AssignsMonotonicSequenceNumbers) {
  flow_.QueueTx(DataRecord());
  flow_.QueueTx(DataRecord());
  PacketPtr p1 = flow_.BuildNextPacket(0);
  PacketPtr p2 = flow_.BuildNextPacket(1 * kMsec);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p1->pony.seq, 1u);
  EXPECT_EQ(p2->pony.seq, 2u);
  EXPECT_EQ(p1->pony.flow_id, (5ull << 32) | 10ull);
  EXPECT_EQ(p1->dst_host, 1);
  EXPECT_EQ(p1->steering_hash, 10u);
}

TEST_F(FlowTest, NothingToSendReturnsNull) {
  EXPECT_EQ(flow_.BuildNextPacket(0), nullptr);
  EXPECT_FALSE(flow_.CanSend(0));
  EXPECT_EQ(flow_.NextSendTime(), kSimTimeNever);
}

TEST_F(FlowTest, CumulativeAckClearsUnacked) {
  for (int i = 0; i < 3; ++i) {
    flow_.QueueTx(DataRecord());
    flow_.BuildNextPacket(i * 10 * kUsec);
  }
  EXPECT_EQ(flow_.unacked_packets(), 3u);
  flow_.OnReceive(PeerPacket(0, 2, PonyPacketType::kAck), 100 * kUsec);
  EXPECT_EQ(flow_.unacked_packets(), 1u);
  flow_.OnReceive(PeerPacket(0, 3, PonyPacketType::kAck), 110 * kUsec);
  EXPECT_EQ(flow_.unacked_packets(), 0u);
}

TEST_F(FlowTest, AckObserverFiresPerAckedPacket) {
  int observed = 0;
  flow_.set_ack_observer([&observed](const TxRecord&) { ++observed; });
  for (int i = 0; i < 5; ++i) {
    flow_.QueueTx(DataRecord());
    flow_.BuildNextPacket(i * 10 * kUsec);
  }
  flow_.OnReceive(PeerPacket(0, 5, PonyPacketType::kAck), 1 * kMsec);
  EXPECT_EQ(observed, 5);
}

TEST_F(FlowTest, InOrderReceiveDelivers) {
  Flow::RxResult r = flow_.OnReceive(PeerPacket(1, 0), 0);
  EXPECT_TRUE(r.deliver);
  EXPECT_FALSE(r.duplicate);
  r = flow_.OnReceive(PeerPacket(2, 0), 1000);
  EXPECT_TRUE(r.deliver);
}

TEST_F(FlowTest, DuplicatesSuppressedButReacked) {
  flow_.OnReceive(PeerPacket(1, 0), 0);
  Flow::RxResult r = flow_.OnReceive(PeerPacket(1, 0), 1000);
  EXPECT_TRUE(r.duplicate);
  EXPECT_FALSE(r.deliver);
  EXPECT_TRUE(flow_.ack_pending());  // immediate re-ack for dup
  EXPECT_EQ(flow_.stats().duplicates_received, 1);
}

TEST_F(FlowTest, OutOfOrderDeliveredToUpperLayerAndAcked) {
  // The lower layer delivers individual packets; reassembly is the upper
  // layer's job (Section 3.1).
  Flow::RxResult r = flow_.OnReceive(PeerPacket(3, 0), 0);
  EXPECT_TRUE(r.deliver);
  EXPECT_TRUE(flow_.ack_pending());  // dup-ack signal
  // Cumulative ack still reflects only in-order delivery.
  flow_.QueueTx(DataRecord());
  PacketPtr p = flow_.BuildNextPacket(1000);
  EXPECT_EQ(p->pony.ack, 0u);
  // Filling the hole advances the cumulative ack past both.
  flow_.OnReceive(PeerPacket(1, 0), 2000);
  flow_.OnReceive(PeerPacket(2, 0), 3000);
  flow_.QueueTx(DataRecord());
  p = flow_.BuildNextPacket(2 * kMsec);
  EXPECT_EQ(p->pony.ack, 3u);
}

TEST_F(FlowTest, ThreeDupAcksTriggerFastRetransmit) {
  for (int i = 0; i < 4; ++i) {
    flow_.QueueTx(DataRecord());
    flow_.BuildNextPacket(i * 10 * kUsec);
  }
  // Peer acks nothing (seq 1 lost) three times.
  for (int i = 0; i < 3; ++i) {
    flow_.OnReceive(PeerPacket(0, 0, PonyPacketType::kAck),
                    200 * kUsec + i * 1000);
  }
  // The missing packet (seq 1) is queued for retransmission.
  PacketPtr p = flow_.BuildNextPacket(300 * kUsec);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->pony.seq, 1u);
  EXPECT_EQ(flow_.stats().retransmits, 1);
}

TEST_F(FlowTest, RtoRetransmitsAndBacksOffRate) {
  flow_.QueueTx(DataRecord());
  flow_.BuildNextPacket(0);
  double rate_before = flow_.timely().rate_bytes_per_sec();
  EXPECT_EQ(flow_.rto_deadline(), params_.min_rto);
  EXPECT_FALSE(flow_.OnTimerCheck(params_.min_rto - 1));
  EXPECT_TRUE(flow_.OnTimerCheck(params_.min_rto + 1));
  EXPECT_EQ(flow_.stats().rto_events, 1);
  EXPECT_LT(flow_.timely().rate_bytes_per_sec(), rate_before);
  PacketPtr p = flow_.BuildNextPacket(params_.min_rto + 2);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->pony.seq, 1u);
}

TEST_F(FlowTest, PacingSpacesPackets) {
  flow_.timely().RestoreRate(1e9);  // 1 GB/s -> ~2us per 2kB packet
  for (int i = 0; i < 64; ++i) {
    flow_.QueueTx(DataRecord(params_.mtu_payload));
  }
  // Prime the pacer, then let deficit accrue over a long idle gap: at one
  // later instant, only the burst allowance goes out.
  ASSERT_NE(flow_.BuildNextPacket(0), nullptr);
  int sent_now = 0;
  while (flow_.BuildNextPacket(1 * kMsec) != nullptr) {
    ++sent_now;
  }
  EXPECT_LE(sent_now, 17);
  EXPECT_GT(sent_now, 4);
  // After the pacing gap, more become sendable.
  SimTime next = flow_.NextSendTime();
  ASSERT_NE(next, kSimTimeNever);
  EXPECT_FALSE(flow_.CanSend(next - 1));
  EXPECT_TRUE(flow_.CanSend(next));
}

TEST_F(FlowTest, CreditGatesMessageDataButNotOneSidedOps) {
  // Exhaust the initial credit with message data.
  int64_t initial = flow_.credit();
  int sent = 0;
  while (true) {
    flow_.QueueTx(DataRecord(params_.mtu_payload, /*credit=*/true));
    if (flow_.BuildNextPacket(sent * kMsec) == nullptr) {
      break;
    }
    ++sent;
  }
  EXPECT_NEAR(static_cast<double>(sent),
              static_cast<double>(initial) / params_.mtu_payload, 2);
  EXPECT_FALSE(flow_.CanSend(kSec));
  // One-sided ops bypass credit (Section 3.3): they still go out. The
  // credit-starved message stays queued behind... so use a fresh flow.
  Flow flow2(key_, 0, 5, 2, TimelyParams{}, &params_);
  int i2 = 0;
  while (flow2.credit() >= params_.mtu_payload) {
    flow2.QueueTx(DataRecord(params_.mtu_payload, true));
    ASSERT_NE(flow2.BuildNextPacket(kSec + (++i2) * kMsec), nullptr);
  }
  TxRecord op;
  op.header.type = PonyPacketType::kOpRequest;
  op.header.op = PonyOpCode::kRead;
  op.payload_bytes = 0;
  op.uses_credit = false;
  flow2.QueueTx(std::move(op));
  PacketPtr op_packet = flow2.BuildNextPacket(kSec + (i2 + 1) * kMsec);
  ASSERT_NE(op_packet, nullptr);
  EXPECT_EQ(op_packet->pony.type, PonyPacketType::kOpRequest);
}

TEST_F(FlowTest, CreditGrantRestoresSending) {
  // Drain credit (advance time so pacing never gates the drain).
  int i = 0;
  while (flow_.credit() >= params_.mtu_payload) {
    flow_.QueueTx(DataRecord(params_.mtu_payload, true));
    ASSERT_NE(flow_.BuildNextPacket(kSec + (++i) * kMsec), nullptr);
  }
  flow_.QueueTx(DataRecord(params_.mtu_payload, true));
  EXPECT_FALSE(flow_.CanSend(2 * kSec));
  // Peer grants credit.
  Packet grant = PeerPacket(0, 0, PonyPacketType::kCredit);
  grant.pony.credit = 64 * 1024;
  flow_.OnReceive(grant, 2 * kSec);
  EXPECT_TRUE(flow_.CanSend(2 * kSec));
}

TEST_F(FlowTest, ReceiverGrantsAfterDeliveryThreshold) {
  flow_.NoteDelivered(10 * 1024);
  EXPECT_EQ(flow_.MaybeBuildCreditGrant(0), nullptr);  // below threshold
  flow_.NoteDelivered(30 * 1024);
  PacketPtr grant = flow_.MaybeBuildCreditGrant(0);
  ASSERT_NE(grant, nullptr);
  EXPECT_EQ(grant->pony.type, PonyPacketType::kCredit);
  EXPECT_EQ(grant->pony.credit, 40u * 1024u);
}

TEST_F(FlowTest, AckCoalescingEveryEighthOrDeadline) {
  // 7 packets: no ack owed yet (but a deadline exists).
  for (int i = 1; i <= 7; ++i) {
    flow_.OnReceive(PeerPacket(static_cast<uint64_t>(i), 0), i * 1000);
  }
  EXPECT_FALSE(flow_.ack_pending());
  EXPECT_NE(flow_.AckDeadline(), kSimTimeNever);
  EXPECT_EQ(flow_.MaybeBuildAck(8000), nullptr);  // before deadline
  // Eighth packet forces the ack.
  flow_.OnReceive(PeerPacket(8, 0), 8000);
  EXPECT_TRUE(flow_.ack_pending());
  PacketPtr ack = flow_.MaybeBuildAck(9000);
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->pony.ack, 8u);
  EXPECT_EQ(flow_.stats().acks_sent, 1);
  // Lone packet: the delayed-ack deadline forces one out.
  flow_.OnReceive(PeerPacket(9, 0), 10000);
  EXPECT_EQ(flow_.MaybeBuildAck(11000), nullptr);
  PacketPtr late = flow_.MaybeBuildAck(10000 + 25 * kUsec);
  ASSERT_NE(late, nullptr);
  EXPECT_EQ(late->pony.ack, 9u);
}

TEST_F(FlowTest, RttSamplesFeedTimely) {
  flow_.QueueTx(DataRecord());
  flow_.BuildNextPacket(0);
  Packet ack = PeerPacket(0, 1, PonyPacketType::kAck);
  ack.pony.ts_echo = 0;  // force the software-timestamp fallback
  flow_.OnReceive(ack, 30 * kUsec);
  EXPECT_EQ(flow_.stats().rtt_samples, 1);
  EXPECT_EQ(flow_.timely().last_rtt(), 30 * kUsec);
}

TEST_F(FlowTest, SerializeDeserializeRoundTrip) {
  // Build up nontrivial state: some sent, some queued, some received.
  for (int i = 0; i < 5; ++i) {
    flow_.QueueTx(DataRecord(500));
  }
  flow_.BuildNextPacket(0);
  flow_.BuildNextPacket(10 * kUsec);
  // Peer packets carry ack=0 so both of our sent packets stay unacked.
  flow_.OnReceive(PeerPacket(1, 0), 50 * kUsec);
  flow_.OnReceive(PeerPacket(3, 0), 60 * kUsec);  // out of order
  flow_.timely().RestoreRate(3.3e9);
  flow_.NoteDelivered(1000);

  StateWriter w;
  flow_.Serialize(&w);
  StateReader r(w.buffer());
  Flow restored = Flow::Deserialize(&r, 0, 5, TimelyParams{}, &params_);
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(restored.key(), key_);
  EXPECT_EQ(restored.wire_version(), 2);
  EXPECT_DOUBLE_EQ(restored.timely().rate_bytes_per_sec(), 3.3e9);
  EXPECT_EQ(restored.credit(), flow_.credit());
  // In-flight packets are queued for retransmission in the new engine.
  EXPECT_EQ(restored.unacked_packets(), 2u);
  PacketPtr retx = restored.BuildNextPacket(kSec);
  ASSERT_NE(retx, nullptr);
  EXPECT_EQ(retx->pony.seq, 1u);
  // Receive state is preserved: a duplicate of seq 1 is recognized.
  Flow::RxResult rx = restored.OnReceive(PeerPacket(1, 0), kSec);
  EXPECT_TRUE(rx.duplicate);
  // The out-of-order seq 3 is remembered too.
  rx = restored.OnReceive(PeerPacket(3, 0), kSec);
  EXPECT_TRUE(rx.duplicate);
  rx = restored.OnReceive(PeerPacket(2, 0), kSec);
  EXPECT_TRUE(rx.deliver);
}

}  // namespace
}  // namespace snap
