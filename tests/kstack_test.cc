// Kernel TCP stack tests: handshake, data transfer, flow control, loss
// recovery, busy polling, and accounting — the full baseline substrate.
#include <gtest/gtest.h>

#include <memory>

#include "src/apps/simhost.h"
#include "src/apps/tcp_apps.h"

namespace snap {
namespace {

class KstackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(11);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {7};
    a_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
    b_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
  std::unique_ptr<SimHost> a_;
  std::unique_ptr<SimHost> b_;
};

TEST_F(KstackTest, HandshakeEstablishesBothEnds) {
  TcpSocket* accepted = nullptr;
  b_->kstack()->Listen(80, [&](TcpSocket* s) { accepted = s; });
  CpuCostSink cost;
  TcpSocket* client = a_->kstack()->Connect(b_->host_id(), 80, &cost);
  EXPECT_EQ(client->state(), TcpSocket::State::kConnecting);
  bool established_cb = false;
  client->SetEstablishedCallback([&] { established_cb = true; });
  sim_->RunFor(1 * kMsec);
  EXPECT_EQ(client->state(), TcpSocket::State::kEstablished);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->state(), TcpSocket::State::kEstablished);
  EXPECT_TRUE(established_cb);
  EXPECT_GT(cost.ns, 0);
}

TEST_F(KstackTest, ConnectToClosedPortGoesNowhere) {
  CpuCostSink cost;
  TcpSocket* client = a_->kstack()->Connect(b_->host_id(), 9999, &cost);
  sim_->RunFor(10 * kMsec);
  EXPECT_EQ(client->state(), TcpSocket::State::kConnecting);
}

TEST_F(KstackTest, BytesFlowEndToEnd) {
  TcpSocket* server_sock = nullptr;
  b_->kstack()->Listen(80, [&](TcpSocket* s) { server_sock = s; });
  CpuCostSink cost;
  TcpSocket* client = a_->kstack()->Connect(b_->host_id(), 80, &cost);
  sim_->RunFor(1 * kMsec);
  ASSERT_NE(server_sock, nullptr);

  int64_t sent = client->Send(50000, &cost);
  EXPECT_GT(sent, 0);
  sim_->RunFor(5 * kMsec);
  EXPECT_EQ(server_sock->readable_bytes(), sent);
  EXPECT_EQ(server_sock->Recv(INT64_MAX / 2, &cost), sent);
  EXPECT_EQ(server_sock->readable_bytes(), 0);
}

TEST_F(KstackTest, SendBufferBoundsAcceptedBytes) {
  TcpSocket* server_sock = nullptr;
  b_->kstack()->Listen(80, [&](TcpSocket* s) { server_sock = s; });
  CpuCostSink cost;
  TcpSocket* client = a_->kstack()->Connect(b_->host_id(), 80, &cost);
  sim_->RunFor(1 * kMsec);
  int64_t buffer = a_->options().kernel.socket_buffer_bytes;
  int64_t sent = client->Send(10 * buffer, &cost);
  EXPECT_LE(sent, buffer);
}

TEST_F(KstackTest, ReceiverStallExertsBackpressure) {
  TcpSocket* server_sock = nullptr;
  b_->kstack()->Listen(80, [&](TcpSocket* s) { server_sock = s; });
  CpuCostSink cost;
  TcpSocket* client = a_->kstack()->Connect(b_->host_id(), 80, &cost);
  sim_->RunFor(1 * kMsec);
  // Keep sending without the receiver ever reading.
  int64_t total_accepted = 0;
  for (int i = 0; i < 100; ++i) {
    total_accepted += client->Send(64 * 1024, &cost);
    sim_->RunFor(1 * kMsec);
  }
  // Bounded by roughly sndbuf + rwnd, not 6.4MB.
  int64_t buffer = a_->options().kernel.socket_buffer_bytes;
  EXPECT_LE(total_accepted, 3 * buffer);
  // Receiver drains; window reopens; more bytes flow.
  ASSERT_NE(server_sock, nullptr);
  int64_t drained = server_sock->Recv(INT64_MAX / 2, &cost);
  EXPECT_GT(drained, 0);
  sim_->RunFor(5 * kMsec);
  EXPECT_GT(client->Send(64 * 1024, &cost), 0);
}

TEST_F(KstackTest, LossIsRecoveredTransparently) {
  fabric_->set_random_drop_probability(0.02);
  TcpSocket* server_sock = nullptr;
  b_->kstack()->Listen(80, [&](TcpSocket* s) { server_sock = s; });
  CpuCostSink cost;
  TcpSocket* client = a_->kstack()->Connect(b_->host_id(), 80, &cost);
  sim_->RunFor(2 * kMsec);
  ASSERT_NE(server_sock, nullptr);

  int64_t total_sent = 0;
  int64_t total_received = 0;
  for (int i = 0; i < 400; ++i) {
    total_sent += client->Send(16 * 1024, &cost);
    sim_->RunFor(500 * kUsec);
    total_received += server_sock->Recv(INT64_MAX / 2, &cost);
  }
  sim_->RunFor(200 * kMsec);
  total_received += server_sock->Recv(INT64_MAX / 2, &cost);
  EXPECT_EQ(total_received, total_sent);
  EXPECT_GT(client->stats().retransmits, 0);
}

TEST_F(KstackTest, SoftirqCpuIsAttributedToKernelContainer) {
  TcpStreamReceiverTask rx("rx", b_->cpu(), b_->kstack(), 5001);
  rx.Start();
  TcpStreamSenderTask::Options so;
  so.dst_host = b_->host_id();
  TcpStreamSenderTask tx("tx", a_->cpu(), a_->kstack(), so);
  tx.Start();
  sim_->RunFor(20 * kMsec);
  EXPECT_GT(rx.bytes_received(), 1 << 20);
  EXPECT_GT(b_->KernelCpuNs(), 1 * kMsec);
  EXPECT_GT(b_->AppCpuNs(), 0);
}

TEST_F(KstackTest, RRLatencyIsTensOfMicroseconds) {
  TcpRRServerTask::Options so;
  TcpRRServerTask server("srv", b_->cpu(), b_->kstack(), so);
  server.Start();
  TcpRRClientTask::Options co;
  co.dst_host = b_->host_id();
  co.iterations = 500;
  TcpRRClientTask client("cli", a_->cpu(), a_->kstack(), co);
  client.Start();
  sim_->RunFor(1000 * kMsec);
  EXPECT_TRUE(client.done());
  EXPECT_GT(client.latency().Mean(), 10 * kUsec);
  EXPECT_LT(client.latency().Mean(), 80 * kUsec);
}

TEST_F(KstackTest, BusyPollCutsRRLatency) {
  auto run = [&](bool busy) {
    Simulator sim(13);
    Fabric fabric(&sim, NicParams{});
    PonyDirectory dir;
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {7};
    options.kernel.busy_poll = busy;
    SimHost a(&sim, &fabric, &dir, options);
    SimHost b(&sim, &fabric, &dir, options);
    TcpRRServerTask::Options so;
    so.busy_poll = busy;
    TcpRRServerTask server("srv", b.cpu(), b.kstack(), so);
    server.Start();
    TcpRRClientTask::Options co;
    co.dst_host = b.host_id();
    co.iterations = 500;
    co.busy_poll = busy;
    TcpRRClientTask client("cli", a.cpu(), a.kstack(), co);
    client.Start();
    sim.RunFor(1000 * kMsec);
    EXPECT_TRUE(client.done());
    return client.latency().Mean();
  };
  double interrupt_mode = run(false);
  double busy_mode = run(true);
  EXPECT_LT(busy_mode, interrupt_mode * 0.7)
      << "busy-polling should cut RR latency substantially";
}

TEST_F(KstackTest, ManyStreamsDegradeThroughput) {
  auto run = [&](int streams) {
    Simulator sim(17);
    Fabric fabric(&sim, NicParams{});
    PonyDirectory dir;
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {7};
    SimHost a(&sim, &fabric, &dir, options);
    SimHost b(&sim, &fabric, &dir, options);
    TcpStreamReceiverTask rx("rx", b.cpu(), b.kstack(), 5001);
    rx.Start();
    TcpStreamSenderTask::Options so;
    so.dst_host = b.host_id();
    so.num_streams = streams;
    TcpStreamSenderTask tx("tx", a.cpu(), a.kstack(), so);
    tx.Start();
    sim.RunFor(60 * kMsec);
    return rx.bytes_received() * 8.0 / ToSec(60 * kMsec) / 1e9;
  };
  double one = run(1);
  double many = run(200);
  // Table 1 shape: 200 streams run at roughly half the single-stream rate.
  EXPECT_GT(one, 15.0);
  EXPECT_LT(many, one * 0.75);
}

}  // namespace
}  // namespace snap
