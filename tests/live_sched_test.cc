// Live scheduler e2e tests: Snap's Section 2.4 scheduling modes on real
// OS threads, asserted through the scheduler's own placement counters
// (WorkerStats.passes_by_exec — which worker actually ran which host's
// executor), the rebalancer's decision log, and the blocking
// completion-notify poll/wait counters. Plus the cross-process building
// block in-process: two LiveRuntimes owning disjoint host subsets,
// discovering each other through the UDP port-rendezvous directory.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/live/live_apps.h"
#include "src/live/live_runtime.h"
#include "src/snap/engine_group.h"
#include "src/util/doorbell.h"

namespace snap {
namespace {

constexpr int64_t kTestDeadlineNs = 60LL * 1000 * 1000 * 1000;  // 60 s

struct EchoRun {
  LiveAppResult client;
  LiveAppResult server;
};

// Runs a client(host 2i) <-> server(host 2i+1) echo workload for every
// host pair of `runtime` concurrently and returns the per-pair results.
// The runtime must be initialized but not started.
std::vector<EchoRun> RunEchoPairs(LiveRuntime* runtime, int iterations,
                                  int64_t message_bytes, int outstanding,
                                  bool blocking = false) {
  struct Pair {
    std::unique_ptr<PonyClient> client;
    std::unique_ptr<PonyClient> server;
    std::unique_ptr<Doorbell> client_bell;
    std::unique_ptr<Doorbell> server_bell;
    uint64_t ping_stream = 0;
    uint64_t reply_stream = 0;
    PonyAddress client_addr;
    PonyAddress server_addr;
  };
  int num_pairs = runtime->num_hosts() / 2;
  std::vector<Pair> pairs(static_cast<size_t>(num_pairs));
  for (int i = 0; i < num_pairs; ++i) {
    Pair& p = pairs[static_cast<size_t>(i)];
    LiveHost* ch = runtime->host(2 * i);
    LiveHost* sh = runtime->host(2 * i + 1);
    p.client = ch->CreateClient("client-" + std::to_string(i));
    p.server = sh->CreateClient("server-" + std::to_string(i));
    p.client_addr = ch->engine()->address();
    p.server_addr = sh->engine()->address();
    p.ping_stream = p.client->CreateStream(p.server_addr);
    p.reply_stream = p.server->CreateStream(p.client_addr);
    if (blocking) {
      p.client_bell = std::make_unique<Doorbell>();
      p.server_bell = std::make_unique<Doorbell>();
      p.client->BindDoorbell(p.client_bell.get());
      p.server->BindDoorbell(p.server_bell.get());
    }
  }

  runtime->Start();
  int64_t deadline = MonotonicTimeNs() + kTestDeadlineNs;
  std::vector<EchoRun> runs(static_cast<size_t>(num_pairs));
  std::vector<std::thread> threads;
  for (int i = 0; i < num_pairs; ++i) {
    Pair& p = pairs[static_cast<size_t>(i)];
    EchoRun& run = runs[static_cast<size_t>(i)];
    threads.emplace_back([&p, &run, iterations, deadline] {
      run.server = RunLiveEchoServer(p.server.get(), p.reply_stream,
                                     p.client_addr, iterations, deadline,
                                     p.server_bell.get());
    });
    threads.emplace_back(
        [&p, &run, iterations, message_bytes, outstanding, deadline] {
          run.client = RunLiveRpcClient(p.client.get(), p.ping_stream,
                                        p.server_addr, iterations,
                                        message_bytes, outstanding, deadline,
                                        p.client_bell.get());
        });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  runtime->Stop();
  return runs;
}

void ExpectAllCompleted(const std::vector<EchoRun>& runs, int iterations) {
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_FALSE(runs[i].client.timed_out) << "pair " << i;
    EXPECT_FALSE(runs[i].server.timed_out) << "pair " << i;
    EXPECT_EQ(runs[i].client.rpcs_completed, iterations) << "pair " << i;
    EXPECT_EQ(runs[i].client.send_errors + runs[i].server.send_errors, 0)
        << "pair " << i;
  }
}

// Dedicated mode, one worker per executor: worker w ran executor w and
// nothing else — the "burn a core per engine" placement, read off the
// scheduler's own pass counters.
TEST(LiveSchedTest, DedicatedModePlacesOneEnginePerWorker) {
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  options.scheduler.mode = SchedulingMode::kDedicatedCores;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());
  std::vector<EchoRun> runs =
      RunEchoPairs(&runtime, /*iterations=*/100, /*message_bytes=*/64,
                   /*outstanding=*/4);
  ExpectAllCompleted(runs, 100);

  LiveScheduler* sched = runtime.scheduler();
  ASSERT_EQ(sched->num_workers(), 2);
  EXPECT_EQ(sched->migrations(), 0);
  for (int w = 0; w < 2; ++w) {
    LiveScheduler::WorkerStats stats = sched->GetWorkerStats(w);
    ASSERT_EQ(stats.passes_by_exec.size(), 2u);
    EXPECT_GT(stats.passes_by_exec[static_cast<size_t>(w)], 0)
        << "worker " << w << " never ran its own executor";
    EXPECT_EQ(stats.passes_by_exec[static_cast<size_t>(1 - w)], 0)
        << "worker " << w << " ran a foreign executor";
  }
}

// Dedicated mode with fewer workers than executors round-robins: one
// worker hosts both engines, and both make progress on it.
TEST(LiveSchedTest, DedicatedSingleWorkerSharesExecutors) {
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  options.scheduler.mode = SchedulingMode::kDedicatedCores;
  options.scheduler.dedicated_workers = 1;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());
  std::vector<EchoRun> runs =
      RunEchoPairs(&runtime, /*iterations=*/100, /*message_bytes=*/64,
                   /*outstanding=*/4);
  ExpectAllCompleted(runs, 100);

  LiveScheduler* sched = runtime.scheduler();
  ASSERT_EQ(sched->num_workers(), 1);
  LiveScheduler::WorkerStats stats = sched->GetWorkerStats(0);
  ASSERT_EQ(stats.passes_by_exec.size(), 2u);
  EXPECT_GT(stats.passes_by_exec[0], 0);
  EXPECT_GT(stats.passes_by_exec[1], 0);
}

// Spreading mode: same one-to-one placement as dedicated, but workers
// park immediately when idle — the scale-to-zero mode must actually park
// during a closed-loop workload full of idle gaps.
TEST(LiveSchedTest, SpreadingModeParksWhenIdle) {
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  options.scheduler.mode = SchedulingMode::kSpreadingEngines;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());
  std::vector<EchoRun> runs =
      RunEchoPairs(&runtime, /*iterations=*/200, /*message_bytes=*/64,
                   /*outstanding=*/1);  // ping-pong: idle gap every RPC
  ExpectAllCompleted(runs, 200);

  LiveScheduler* sched = runtime.scheduler();
  ASSERT_EQ(sched->num_workers(), 2);
  EXPECT_EQ(sched->migrations(), 0);
  int64_t total_parks = 0;
  for (int w = 0; w < 2; ++w) {
    LiveScheduler::WorkerStats stats = sched->GetWorkerStats(w);
    ASSERT_EQ(stats.passes_by_exec.size(), 2u);
    EXPECT_GT(stats.passes_by_exec[static_cast<size_t>(w)], 0);
    EXPECT_EQ(stats.passes_by_exec[static_cast<size_t>(1 - w)], 0);
    total_parks += stats.parks;
  }
  EXPECT_GT(total_parks, 0) << "spreading workers never parked";
}

// Compacting mode end-to-end: four executors share the bounded worker
// pool (all start compacted on worker 0) and a two-pair echo workload
// with deliberately truncated poll budgets — backlog stays visible to
// the rebalancer — must complete exactly, with every executor polled,
// whether or not the rebalancer chose to migrate on this machine.
TEST(LiveSchedTest, CompactingEchoCompletesWithAllExecutorsPolled) {
  constexpr int kIterations = 400;
  LiveRuntime::Options options;
  options.num_hosts = 4;  // two concurrent echo pairs
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  options.scheduler.mode = SchedulingMode::kCompactingEngines;
  options.scheduler.compacting_slo_ns = 10'000;
  options.scheduler.rebalance_interval_ns = 100'000;
  // Queue delay is sampled after each engine poll: with the default
  // budgets a pass drains everything and the rebalancer only ever sees
  // an empty queue. Small poll/batch budgets truncate polls under load,
  // so the backlog (and its delay) stays visible at the sampling point.
  options.executor.poll_budget = 2 * kUsec;
  options.pony.rx_batch = 2;
  options.pony.cmd_batch = 2;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());
  std::vector<EchoRun> runs =
      RunEchoPairs(&runtime, kIterations, /*message_bytes=*/1024,
                   /*outstanding=*/16);
  ExpectAllCompleted(runs, kIterations);

  LiveScheduler* sched = runtime.scheduler();
  for (const LiveScheduler::Decision& d : sched->decisions()) {
    EXPECT_NE(d.from_worker, d.to_worker);
    EXPECT_GE(d.executor, 0);
    EXPECT_LT(d.executor, 4);
  }
  // Every executor ran somewhere; placement counters survive whatever
  // migrations happened.
  std::vector<int64_t> passes_per_exec(4, 0);
  for (int w = 0; w < sched->num_workers(); ++w) {
    LiveScheduler::WorkerStats stats = sched->GetWorkerStats(w);
    ASSERT_EQ(stats.passes_by_exec.size(), 4u);
    for (size_t e = 0; e < 4; ++e) {
      passes_per_exec[e] += stats.passes_by_exec[e];
    }
  }
  for (size_t e = 0; e < 4; ++e) {
    EXPECT_GT(passes_per_exec[e], 0) << "executor " << e;
  }
}

// Synthetic engine whose queueing delay is set by the test: the
// deterministic way to drive the compacting rebalancer through its full
// scale-out -> compact-back cycle regardless of machine speed. Also
// checks the one-thread-at-a-time executor contract directly.
class LoadEngine : public Engine {
 public:
  explicit LoadEngine(std::string name) : Engine(std::move(name)) {}

  // Any thread: the queueing delay the engine reports (0 = idle).
  void SetDelay(int64_t delay_ns) {
    delay_ns_.store(delay_ns, std::memory_order_release);
    NotifyWork();
  }

  PollResult Poll(SimTime now, SimDuration budget_ns) override {
    if (in_poll_.exchange(true, std::memory_order_acq_rel)) {
      concurrent_polls_.fetch_add(1, std::memory_order_relaxed);
    }
    RunMailbox();
    PollResult result;
    if (delay_ns_.load(std::memory_order_acquire) > 0) {
      result.cpu_ns = 1000;
      result.work_items = 1;
      polls_.fetch_add(1, std::memory_order_relaxed);
    }
    in_poll_.store(false, std::memory_order_release);
    return result;
  }

  bool HasWork(SimTime now) const override {
    return delay_ns_.load(std::memory_order_acquire) > 0;
  }

  SimDuration QueueingDelay(SimTime now) const override {
    return delay_ns_.load(std::memory_order_acquire);
  }

  int64_t polls() const { return polls_.load(std::memory_order_relaxed); }
  int64_t concurrent_polls() const {
    return concurrent_polls_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> delay_ns_{0};
  std::atomic<int64_t> polls_{0};
  std::atomic<bool> in_poll_{false};
  std::atomic<int64_t> concurrent_polls_{0};
};

// The migration protocol itself: two executors compacted on worker 0;
// one breaches the SLO -> the rebalancer scales it out to worker 1
// (recording the observed delay); load subsides -> after the calm window
// it compacts back to worker 0. Both cross-thread handoffs land within
// the deadline, the moved executor accrues passes on both workers, and
// no two threads ever polled an engine simultaneously.
TEST(LiveSchedTest, CompactingMigratesOnSloBreachAndCompactsBack) {
  LiveScheduler::Options options;
  options.mode = SchedulingMode::kCompactingEngines;
  options.max_workers = 2;
  options.compacting_slo_ns = 40'000;
  options.rebalance_interval_ns = 100'000;
  options.compact_after_samples = 3;

  int64_t epoch = MonotonicTimeNs();
  LiveExecutor::Options exec_options;
  exec_options.name = "exec-a";
  LiveExecutor exec_a(/*seed=*/1, epoch, exec_options);
  exec_options.name = "exec-b";
  LiveExecutor exec_b(/*seed=*/2, epoch, exec_options);
  LoadEngine engine_a("load-a");
  LoadEngine engine_b("load-b");
  exec_a.AddEngine(&engine_a);
  exec_b.AddEngine(&engine_b);

  LiveScheduler sched(epoch, options);
  ASSERT_EQ(sched.AddExecutor(&exec_a), 0);
  ASSERT_EQ(sched.AddExecutor(&exec_b), 1);
  sched.Start();

  // Both busy on worker 0; executor 1 far past the SLO -> scale-out.
  engine_a.SetDelay(1'000);
  engine_b.SetDelay(500'000);
  int64_t deadline = MonotonicTimeNs() + kTestDeadlineNs;
  while (sched.migrations() < 1 && MonotonicTimeNs() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(sched.migrations(), 1) << "SLO breach never scaled out";

  // Load subsides -> executor 1 compacts back to the primary.
  engine_a.SetDelay(0);
  engine_b.SetDelay(0);
  while (sched.migrations() < 2 && MonotonicTimeNs() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_GE(sched.migrations(), 2) << "calm executor never compacted back";
  sched.Stop();

  bool scaled_out = false;
  bool compacted = false;
  for (const LiveScheduler::Decision& d : sched.decisions()) {
    EXPECT_NE(d.from_worker, d.to_worker);
    if (d.kind == LiveScheduler::Decision::kScaleOut) {
      scaled_out = true;
      EXPECT_EQ(d.executor, 1);
      EXPECT_GE(d.observed_delay_ns, options.compacting_slo_ns);
    } else {
      compacted = true;
      EXPECT_EQ(d.to_worker, 0);
    }
  }
  EXPECT_TRUE(scaled_out);
  EXPECT_TRUE(compacted);

  // The moved executor ran on both workers; the stay-put one only on the
  // primary. The engines were never polled by two threads at once.
  ASSERT_EQ(sched.num_workers(), 2);
  LiveScheduler::WorkerStats w0 = sched.GetWorkerStats(0);
  LiveScheduler::WorkerStats w1 = sched.GetWorkerStats(1);
  ASSERT_EQ(w0.passes_by_exec.size(), 2u);
  ASSERT_EQ(w1.passes_by_exec.size(), 2u);
  EXPECT_GT(w0.passes_by_exec[0], 0);
  EXPECT_EQ(w1.passes_by_exec[0], 0);
  EXPECT_GT(w0.passes_by_exec[1], 0);
  EXPECT_GT(w1.passes_by_exec[1], 0);
  EXPECT_GT(w1.migrations_in, 0);
  EXPECT_EQ(engine_a.concurrent_polls(), 0);
  EXPECT_EQ(engine_b.concurrent_polls(), 0);
  EXPECT_GT(engine_b.polls(), 0);
}

// Section 3.1's completion notification: with the client doorbell bound,
// the app thread sleeps between completions instead of spin-polling. The
// poll-pass budget (30 passes/RPC, vs millions when spinning) is the
// ~0% busy-poll acceptance bar; waits > 0 proves it actually slept.
TEST(LiveSchedTest, BlockingNotifyNearZeroBusyPoll) {
  constexpr int kIterations = 300;
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  options.scheduler.mode = SchedulingMode::kSpreadingEngines;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());
  std::vector<EchoRun> runs =
      RunEchoPairs(&runtime, kIterations, /*message_bytes=*/64,
                   /*outstanding=*/16, /*blocking=*/true);
  ExpectAllCompleted(runs, kIterations);
  EXPECT_GT(runs[0].client.waits, 0) << "client never slept on the bell";
  EXPECT_LT(runs[0].client.poll_passes, kIterations * 30)
      << "blocking client busy-polled";
  EXPECT_GT(runs[0].server.waits, 0);
}

// Every scheduling mode completes the echo e2e over UDP sockets too (the
// fabric whose remote peers cannot ring a parked worker's doorbell —
// bounded max_park covers the gap), and reports itself in ProfileJson.
class LiveSchedModeTest
    : public ::testing::TestWithParam<SchedulingMode> {};

TEST_P(LiveSchedModeTest, UdpEchoCompletesAndProfileReportsMode) {
  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kUdp;
  options.scheduler.mode = GetParam();
  LiveRuntime runtime(options);
  Status init = runtime.Init();
  if (!init.ok()) {
    GTEST_SKIP() << "UDP sockets unavailable: " << init.message();
  }
  std::vector<EchoRun> runs =
      RunEchoPairs(&runtime, /*iterations=*/100, /*message_bytes=*/64,
                   /*outstanding=*/4);
  ExpectAllCompleted(runs, 100);
  std::string profile = runtime.scheduler()->ProfileJson();
  EXPECT_NE(profile.find(SchedulingModeName(GetParam())),
            std::string::npos)
      << profile;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, LiveSchedModeTest,
    ::testing::Values(SchedulingMode::kDedicatedCores,
                      SchedulingMode::kSpreadingEngines,
                      SchedulingMode::kCompactingEngines));

// Binds an ephemeral UDP port, releases it, and returns it — a test-only
// rendezvous port picker (tiny reuse race, fine for CI).
uint16_t FreeUdpPort() {
  int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return 0;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  uint16_t port = 0;
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  close(fd);
  return port;
}

// The cross-process building block, in-process: two LiveRuntimes each own
// ONE host of a two-host rack and learn the other's endpoint + wire range
// through the port-rendezvous directory (runtime A serves it). Echo RPCs
// then flow between engines living in different runtimes — different
// PonyDirectories, different schedulers — over real UDP.
TEST(LiveSchedTest, UdpCrossRuntimeEchoRendezvous) {
  constexpr int kIterations = 100;
  uint16_t dir_port = FreeUdpPort();
  ASSERT_NE(dir_port, 0);

  auto make_options = [&](std::vector<int> local, bool serve) {
    LiveRuntime::Options options;
    options.num_hosts = 2;
    options.local_hosts = std::move(local);
    options.fabric = LiveRuntime::FabricKind::kUdp;
    options.scheduler.mode = SchedulingMode::kSpreadingEngines;
    options.udp.directory_address = "127.0.0.1";
    options.udp.directory_port = dir_port;
    options.udp.directory_server = serve;
    return options;
  };
  LiveRuntime node_a(make_options({0}, /*serve=*/true));
  LiveRuntime node_b(make_options({1}, /*serve=*/false));

  // Rendezvous blocks until both sides announce: Init concurrently.
  Status init_a, init_b;
  std::thread ta([&] { init_a = node_a.Init(); });
  std::thread tb([&] { init_b = node_b.Init(); });
  ta.join();
  tb.join();
  if (!init_a.ok() || !init_b.ok()) {
    GTEST_SKIP() << "UDP rendezvous unavailable: "
                 << (init_a.ok() ? init_b.message() : init_a.message());
  }
  ASSERT_NE(node_a.host(0), nullptr);
  EXPECT_EQ(node_a.host(1), nullptr);  // remote: lives in node_b
  ASSERT_NE(node_b.host(1), nullptr);
  EXPECT_EQ(node_b.host(0), nullptr);

  // Engine ids are host + 1 by construction, so the remote address needs
  // no coordination beyond the rendezvous itself.
  PonyAddress addr_a{0, 1};
  PonyAddress addr_b{1, 2};
  auto client = node_a.host(0)->CreateClient("xproc-client");
  auto server = node_b.host(1)->CreateClient("xproc-server");
  uint64_t ping_stream = client->CreateStream(addr_b);
  uint64_t reply_stream = server->CreateStream(addr_a);

  node_a.Start();
  node_b.Start();
  int64_t deadline = MonotonicTimeNs() + kTestDeadlineNs;
  LiveAppResult client_result, server_result;
  std::thread server_thread([&] {
    server_result = RunLiveEchoServer(server.get(), reply_stream, addr_a,
                                      kIterations, deadline);
  });
  client_result = RunLiveRpcClient(client.get(), ping_stream, addr_b,
                                   kIterations, /*message_bytes=*/64,
                                   /*outstanding=*/4, deadline);
  // Join the server before stopping either runtime: its final send
  // completions need the client-side engine alive to ack retransmits.
  server_thread.join();
  node_a.Stop();
  node_b.Stop();

  EXPECT_FALSE(client_result.timed_out);
  EXPECT_FALSE(server_result.timed_out);
  EXPECT_EQ(client_result.rpcs_completed, kIterations);
  EXPECT_EQ(server_result.messages_received, kIterations);
  EXPECT_EQ(client_result.send_errors + server_result.send_errors, 0);
  // Both fabrics moved real datagrams (data + acks on each side).
  EXPECT_GT(node_a.GetFabricStats().delivered, kIterations);
  EXPECT_GT(node_b.GetFabricStats().delivered, kIterations);
}

}  // namespace
}  // namespace snap
