// Transparent upgrade tests (Section 4): engines migrate between Snap
// instances one at a time, client channels survive, in-flight traffic is
// recovered by end-to-end retransmission, blackout scales with state size,
// and the engine's serialized state (flows, streams, pending ops) is
// faithfully restored.
#include <gtest/gtest.h>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/snap/upgrade.h"
#include "src/stats/trace.h"

namespace snap {
namespace {

class UpgradeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(31);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {0};
    a_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
    b_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
  }

  // Builds the new Snap instance ("version 2") on host A with a matching
  // module and group, like the Snap master launching the new release.
  std::unique_ptr<SnapInstance> MakeNewInstance() {
    auto inst = std::make_unique<SnapInstance>(
        "snap-v2", sim_.get(), a_->cpu(), a_->nic());
    inst->RegisterModule(std::make_unique<PonyModule>(
        sim_.get(), a_->nic(), directory_.get(), a_->options().pony,
        a_->options().timely, a_->options().app));
    EngineGroup::Options group_options;
    group_options.mode = SchedulingMode::kDedicatedCores;
    group_options.dedicated_cores = {1};
    inst->CreateGroup("default", group_options);
    return inst;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
  std::unique_ptr<SimHost> a_;
  std::unique_ptr<SimHost> b_;
};

TEST_F(UpgradeTest, EngineMigratesAndClientSurvives) {
  PonyEngine* ea = a_->CreatePonyEngine("engine0");
  PonyEngine* eb = b_->CreatePonyEngine("peer");
  auto ca = a_->CreateClient(ea, "app");
  auto cb = b_->CreateClient(eb, "peer_app");

  // Traffic before the upgrade.
  CpuCostSink cost;
  uint64_t stream = ca->CreateStream(eb->address());
  ca->SendMessage(eb->address(), stream, 0, {1, 2, 3}, &cost);
  sim_->RunFor(5 * kMsec);
  EXPECT_TRUE(cb->PollMessage(&cost).has_value());

  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  UpgradeManager::Result result;
  bool done = false;
  manager.StartUpgrade(a_->snap(), v2.get(), [&](const auto& r) {
    result = r;
    done = true;
  });
  sim_->RunFor(2000 * kMsec);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.engines.size(), 1u);
  EXPECT_GT(result.engines[0].blackout, 0);

  // The old instance no longer owns the engine; the new one does.
  EXPECT_EQ(a_->snap()->engine("engine0"), nullptr);
  PonyEngine* fresh = static_cast<PonyEngine*>(v2->engine("engine0"));
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh, ea);
  // Same fabric address (peers' flows stay valid).
  EXPECT_EQ(fresh->address(), (PonyAddress{a_->host_id(), 1}));

  // The client channel was rebound transparently: the app keeps using the
  // same PonyClient object ("applications do not notice").
  EXPECT_EQ(ca->engine(), fresh);
  ca->SendMessage(eb->address(), stream, 0, {9, 8, 7}, &cost);
  sim_->RunFor(10 * kMsec);
  auto msg = cb->PollMessage(&cost);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->data, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_EQ(msg->stream_id, stream);  // stream survived, state intact
}

TEST_F(UpgradeTest, InFlightTrafficRecoversAcrossBlackout) {
  PonyEngine* ea = a_->CreatePonyEngine("engine0");
  PonyEngine* eb = b_->CreatePonyEngine("peer");
  auto ca = a_->CreateClient(ea, "app");
  auto cb = b_->CreateClient(eb, "peer_app");

  // Continuous receiving app + a sender that keeps pumping messages
  // through the upgrade window.
  PonyStreamReceiverTask receiver("rx", b_->cpu(), cb.get());
  receiver.Start();
  PonyStreamSenderTask::Options sender_options;
  sender_options.peer = eb->address();
  sender_options.message_bytes = 8 * 1024;
  sender_options.max_outstanding = 8;
  PonyStreamSenderTask sender("tx", a_->cpu(), ca.get(), sender_options);
  sender.Start();
  sim_->RunFor(20 * kMsec);
  EXPECT_GT(receiver.bytes_received(), 0);

  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  bool done = false;
  manager.StartUpgrade(a_->snap(), v2.get(),
                       [&](const auto&) { done = true; });
  sim_->RunFor(1000 * kMsec);
  ASSERT_TRUE(done);

  // Traffic resumed after the blackout: whatever was sent eventually
  // arrives (dropped packets are retransmitted by the restored flows).
  int64_t after_upgrade = receiver.bytes_received();
  sim_->RunFor(500 * kMsec);
  EXPECT_GT(receiver.bytes_received(), after_upgrade);
  // The sender never stops, so the last few messages are legitimately in
  // flight when the clock stops: everything except a small in-flight
  // window must have arrived (nothing was lost to the blackout).
  sim_->RunFor(1000 * kMsec);
  EXPECT_GE(receiver.bytes_received(),
            sender.bytes_submitted() - (2 << 20));
}

TEST_F(UpgradeTest, BlackoutGrowsWithStateFootprint) {
  // Two engines: one nearly stateless, one with many flows.
  PonyEngine* small = a_->CreatePonyEngine("small");
  PonyEngine* big = a_->CreatePonyEngine("big");
  auto ca = a_->CreateClient(small, "app_small");
  auto cb = a_->CreateClient(big, "app_big");
  (void)ca;

  // Populate the big engine with flows to many peers.
  std::vector<std::unique_ptr<SimHost>> peers;
  CpuCostSink cost;
  for (int i = 0; i < 12; ++i) {
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {0};
    peers.push_back(std::make_unique<SimHost>(
        sim_.get(), fabric_.get(), directory_.get(), options));
    PonyEngine* pe = peers.back()->CreatePonyEngine(
        "peer" + std::to_string(i));
    uint64_t stream = cb->CreateStream(pe->address());
    cb->SendMessage(pe->address(), stream, 64, {}, &cost);
    sim_->RunFor(1 * kMsec);
  }
  EXPECT_GE(big->flow_count(), 12u);
  EXPECT_EQ(small->flow_count(), 0u);

  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  UpgradeManager::Result result;
  bool done = false;
  manager.StartUpgrade(a_->snap(), v2.get(), [&](const auto& r) {
    result = r;
    done = true;
  });
  sim_->RunFor(5000 * kMsec);
  ASSERT_TRUE(done);
  ASSERT_EQ(result.engines.size(), 2u);
  SimDuration small_blackout = 0;
  SimDuration big_blackout = 0;
  for (const auto& er : result.engines) {
    if (er.engine_name == "small") {
      small_blackout = er.blackout;
    } else {
      big_blackout = er.blackout;
    }
  }
  EXPECT_GT(big_blackout, small_blackout);
  // Both include the fixed floor.
  UpgradeParams defaults;
  EXPECT_GE(small_blackout, defaults.blackout_fixed);
}

TEST_F(UpgradeTest, EnginesMigrateOneAtATime) {
  // With several engines, migrations are sequential: total upgrade time is
  // at least the sum of blackouts (Section 4: "migrating engines one at a
  // time, each in its entirety").
  for (int i = 0; i < 3; ++i) {
    a_->CreatePonyEngine("engine" + std::to_string(i));
  }
  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  UpgradeManager::Result result;
  bool done = false;
  manager.StartUpgrade(a_->snap(), v2.get(), [&](const auto& r) {
    result = r;
    done = true;
  });
  sim_->RunFor(5000 * kMsec);
  ASSERT_TRUE(done);
  ASSERT_EQ(result.engines.size(), 3u);
  SimDuration sum = 0;
  for (const auto& er : result.engines) {
    sum += er.blackout + er.brownout;
  }
  EXPECT_GE(result.total, sum);
  EXPECT_EQ(v2->engines().size(), 3u);
  EXPECT_TRUE(a_->snap()->engines().empty());
}

TEST_F(UpgradeTest, BlackoutHistogramAccumulates) {
  a_->CreatePonyEngine("e1");
  a_->CreatePonyEngine("e2");
  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  bool done = false;
  manager.StartUpgrade(a_->snap(), v2.get(),
                       [&](const auto&) { done = true; });
  sim_->RunFor(5000 * kMsec);
  ASSERT_TRUE(done);
  EXPECT_EQ(manager.blackout_histogram().count(), 2);
  UpgradeParams defaults;
  EXPECT_GE(manager.blackout_histogram().min(), defaults.blackout_fixed);
}

// The flight recorder's async spans must reproduce the brownout/blackout
// durations the upgrade manager reports — the trace IS the measurement,
// not an approximation of it.
TEST_F(UpgradeTest, TraceSpansMatchReportedBrownoutAndBlackout) {
  TraceRecorder trace;
  sim_->set_tracer(&trace);
  a_->CreatePonyEngine("e1");
  a_->CreatePonyEngine("e2");
  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  UpgradeManager::Result result;
  bool done = false;
  manager.StartUpgrade(a_->snap(), v2.get(), [&](const auto& r) {
    result = r;
    done = true;
  });
  sim_->RunFor(5000 * kMsec);
  ASSERT_TRUE(done);
  ASSERT_EQ(result.engines.size(), 2u);

  auto brownouts = trace.AsyncSpans("brownout");
  auto blackouts = trace.AsyncSpans("blackout");
  ASSERT_EQ(brownouts.size(), result.engines.size());
  ASSERT_EQ(blackouts.size(), result.engines.size());
  for (size_t i = 0; i < result.engines.size(); ++i) {
    const auto& er = result.engines[i];
    ASSERT_GE(brownouts[i].end, 0) << "brownout span left open";
    ASSERT_GE(blackouts[i].end, 0) << "blackout span left open";
    EXPECT_EQ(brownouts[i].end - brownouts[i].begin, er.brownout)
        << "engine " << er.engine_name;
    EXPECT_EQ(blackouts[i].end - blackouts[i].begin, er.blackout)
        << "engine " << er.engine_name;
    // Phases are contiguous: blackout starts when brownout ends.
    EXPECT_EQ(blackouts[i].begin, brownouts[i].end);
    EXPECT_EQ(brownouts[i].args, TraceArgStr("engine", er.engine_name));
  }
}

TEST_F(UpgradeTest, PendingOneSidedOpsCompleteAfterUpgrade) {
  PonyEngine* ea = a_->CreatePonyEngine("engine0");
  PonyEngine* eb = b_->CreatePonyEngine("peer");
  auto ca = a_->CreateClient(ea, "app");
  auto cb = b_->CreateClient(eb, "peer_app");
  uint64_t region = cb->RegisterRegion(4096, false);
  cb->region(region)->data[7] = 123;

  // Issue a read, then IMMEDIATELY start the upgrade so the op is likely
  // in flight during the blackout.
  CpuCostSink cost;
  uint64_t op = ca->Read(eb->address(), region, 0, 64, &cost);
  ASSERT_NE(op, 0u);
  std::unique_ptr<SnapInstance> v2 = MakeNewInstance();
  UpgradeManager manager(sim_.get(), UpgradeParams{});
  bool done = false;
  manager.StartUpgrade(a_->snap(), v2.get(),
                       [&](const auto&) { done = true; });
  sim_->RunFor(3000 * kMsec);
  ASSERT_TRUE(done);
  // The pending op table moved with the engine; the (possibly
  // retransmitted) response completes to the surviving client.
  std::optional<PonyCompletion> completion;
  for (int i = 0; i < 100 && !completion.has_value(); ++i) {
    sim_->RunFor(10 * kMsec);
    completion = ca->PollCompletion(&cost);
  }
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->op_id, op);
  EXPECT_EQ(completion->status, PonyOpStatus::kOk);
  ASSERT_EQ(completion->data.size(), 64u);
  EXPECT_EQ(completion->data[7], 123);
}

}  // namespace
}  // namespace snap
