// Threaded stress tests for the queues in their epoch-exchange roles
// (src/net/shard_net.h): shard threads burst hand-offs into per-channel
// SPSC rings while a coordinator drains them at barriers. The model
// checker (src/verify) proves the small interleavings exhaustively;
// these tests hammer the real std::atomic build with real threads and
// real barriers — over a million operations — so TSan sees the exact
// producer/consumer shape the sharded simulator uses. Assertions check
// exactly-once delivery and per-producer FIFO order; races surface as
// TSan reports (the `tsan` ctest label wires these into the sanitizer
// CI matrix).
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "src/queue/mpsc_queue.h"
#include "src/queue/spsc_ring.h"

namespace snap {
namespace {

// Encode (producer, sequence) in one word so the consumer can check
// per-producer FIFO without any shared state.
constexpr uint64_t Tag(int producer, uint64_t seq) {
  return (static_cast<uint64_t>(producer) << 48) | seq;
}

// The exchange shape: P producer threads each own one SpscRing toward the
// coordinator (the (src, dst) channel matrix gives every directed pair its
// own ring, so each ring really is single-producer). Producers burst up to
// a full epoch's traffic, park at a barrier, and the coordinator drains
// every ring while they wait — exactly ShardedFabricGroup::Exchange().
TEST(EpochExchangeStressTest, SpscRingsBurstAndBarrierDrain) {
  constexpr int kProducers = 4;
  constexpr int kRounds = 300;
  constexpr int kBurst = 1000;       // <= ring capacity: no spill in-model
  constexpr size_t kCapacity = 1024;
  static_assert(kBurst <= static_cast<int>(kCapacity));

  std::vector<std::unique_ptr<SpscRing<uint64_t>>> rings;
  for (int p = 0; p < kProducers; ++p) {
    rings.push_back(std::make_unique<SpscRing<uint64_t>>(kCapacity));
  }

  // Producers arrive when their burst is staged; the coordinator drains
  // with every producer parked, then releases them into the next epoch.
  std::barrier<> staged(kProducers + 1);
  std::barrier<> drained(kProducers + 1);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &rings, &staged, &drained] {
      uint64_t seq = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBurst; ++i) {
          ASSERT_TRUE(rings[p]->TryPush(Tag(p, seq++)))
              << "ring full mid-epoch despite burst <= capacity";
        }
        staged.arrive_and_wait();
        drained.arrive_and_wait();
      }
    });
  }

  std::vector<uint64_t> next_seq(kProducers, 0);
  int64_t drained_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    staged.arrive_and_wait();
    for (int p = 0; p < kProducers; ++p) {
      while (auto v = rings[p]->TryPop()) {
        int producer = static_cast<int>(*v >> 48);
        uint64_t seq = *v & ((uint64_t{1} << 48) - 1);
        ASSERT_EQ(producer, p);
        ASSERT_EQ(seq, next_seq[p]) << "per-producer FIFO broken";
        ++next_seq[p];
        ++drained_total;
      }
      EXPECT_TRUE(rings[p]->empty());
    }
    drained.arrive_and_wait();
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_EQ(drained_total, int64_t{kProducers} * kRounds * kBurst);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], static_cast<uint64_t>(kRounds) * kBurst);
  }
}

// Overflow variant: bursts exceed ring capacity, exercising the spill
// discipline shard_net relies on — once a ring fills it stays full until
// the barrier, so everything spilled was staged after everything ringed
// and (ring, then spill) preserves the producer's staging order.
TEST(EpochExchangeStressTest, SpscRingOverflowSpillKeepsOrder) {
  constexpr int kProducers = 4;
  constexpr int kRounds = 200;
  constexpr int kBurst = 1500;  // > capacity: forces the spill path
  constexpr size_t kCapacity = 1024;

  struct Channel {
    explicit Channel(size_t cap) : ring(cap) {}
    SpscRing<uint64_t> ring;
    std::vector<uint64_t> spill;  // producer writes, coordinator drains
  };
  std::vector<std::unique_ptr<Channel>> channels;
  for (int p = 0; p < kProducers; ++p) {
    channels.push_back(std::make_unique<Channel>(kCapacity));
  }

  std::barrier<> staged(kProducers + 1);
  std::barrier<> drained(kProducers + 1);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &channels, &staged, &drained] {
      uint64_t seq = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBurst; ++i) {
          uint64_t v = Tag(p, seq++);
          if (!channels[p]->ring.TryPush(v)) {
            channels[p]->spill.push_back(v);
          }
        }
        staged.arrive_and_wait();
        // Barrier: coordinator drains ring + spill. The producer touches
        // the spill vector again only after `drained`, matching the
        // source-shard thread's epoch lifecycle.
        drained.arrive_and_wait();
      }
    });
  }

  std::vector<uint64_t> next_seq(kProducers, 0);
  int64_t drained_total = 0;
  int64_t spilled_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    staged.arrive_and_wait();
    for (int p = 0; p < kProducers; ++p) {
      Channel& ch = *channels[p];
      auto consume = [&](uint64_t v) {
        uint64_t seq = v & ((uint64_t{1} << 48) - 1);
        ASSERT_EQ(static_cast<int>(v >> 48), p);
        ASSERT_EQ(seq, next_seq[p]) << "ring+spill order broken";
        ++next_seq[p];
        ++drained_total;
      };
      while (auto v = ch.ring.TryPop()) {
        consume(*v);
      }
      spilled_total += static_cast<int64_t>(ch.spill.size());
      for (uint64_t v : ch.spill) {
        consume(v);
      }
      ch.spill.clear();
    }
    drained.arrive_and_wait();
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_EQ(drained_total, int64_t{kProducers} * kRounds * kBurst);
  EXPECT_GT(spilled_total, 0) << "burst > capacity must spill";
}

// MPSC variant: all producers share one Vyukov intrusive queue toward the
// coordinator (the shape an N^2-channel-averse exchange would use).
// Push is wait-free from any thread; Pop is single-consumer and may
// return nullptr while a push is mid-flight, so the barrier-time drain
// spins until it has every node the epoch staged.
TEST(EpochExchangeStressTest, MpscQueueBurstAndBarrierDrain) {
  constexpr int kProducers = 4;
  constexpr int kRounds = 150;
  constexpr int kBurst = 1000;

  struct Item : MpscNode {
    uint64_t value = 0;
  };
  // Pre-allocated per-producer node arenas, recycled every round after the
  // coordinator hands them back (nodes must not be reused until popped).
  // deque: Item embeds an atomic link and must not relocate.
  std::vector<std::deque<Item>> arenas(kProducers);
  for (auto& arena : arenas) {
    arena.resize(kBurst);
  }

  MpscQueue queue;
  std::barrier<> staged(kProducers + 1);
  std::barrier<> drained(kProducers + 1);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &arenas, &queue, &staged, &drained] {
      uint64_t seq = 0;
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBurst; ++i) {
          Item* item = &arenas[p][i];
          item->value = Tag(p, seq++);
          queue.Push(item);
        }
        staged.arrive_and_wait();
        drained.arrive_and_wait();
      }
    });
  }

  std::vector<uint64_t> next_seq(kProducers, 0);
  int64_t drained_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    staged.arrive_and_wait();
    // All producers are parked, so every push's tail link is visible or
    // becomes visible after finitely many retries; drain until we have
    // the whole epoch.
    int64_t expect = int64_t{kProducers} * kBurst;
    int64_t got = 0;
    while (got < expect) {
      MpscNode* node = queue.Pop();
      if (node == nullptr) {
        continue;  // empty or mid-push hiccup; retry
      }
      uint64_t v = static_cast<Item*>(node)->value;
      int producer = static_cast<int>(v >> 48);
      uint64_t seq = v & ((uint64_t{1} << 48) - 1);
      ASSERT_EQ(seq, next_seq[producer]) << "per-producer FIFO broken";
      ++next_seq[producer];
      ++got;
      ++drained_total;
    }
    EXPECT_EQ(queue.Pop(), nullptr) << "queue not empty after full drain";
    drained.arrive_and_wait();
  }
  for (std::thread& t : producers) {
    t.join();
  }
  EXPECT_EQ(drained_total, int64_t{kProducers} * kRounds * kBurst);
}

}  // namespace
}  // namespace snap
