// Tests of the TCP RPC workload tasks (the Figure 6(b)-(d) substrate):
// open-loop Poisson generation, response matching, connection pooling, and
// multi-host all-to-all wiring.
#include <gtest/gtest.h>

#include "src/apps/simhost.h"
#include "src/apps/tcp_apps.h"

namespace snap {
namespace {

class TcpRpcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(41);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
  }

  SimHost* AddHost() {
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {7};
    hosts_.push_back(std::make_unique<SimHost>(
        sim_.get(), fabric_.get(), directory_.get(), options));
    return hosts_.back().get();
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

TEST_F(TcpRpcTest, SingleClientServerExchangesRpcs) {
  SimHost* a = AddHost();
  SimHost* b = AddHost();
  TcpRpcContext ctx;
  TcpRpcServerTask server("srv", b->cpu(), b->kstack(), 5003, &ctx);
  server.Start();
  TcpRpcClientTask::Options options;
  options.peer_hosts = {b->host_id()};
  options.rpcs_per_sec = 2000;
  options.response_bytes = 32 * 1024;
  TcpRpcClientTask client("cli", a->cpu(), a->kstack(), &ctx, options);
  client.Start();
  sim_->RunFor(200 * kMsec);
  // Roughly rate * time RPCs completed (open loop).
  EXPECT_GT(client.rpcs_completed(), 300);
  EXPECT_EQ(server.requests_served(), client.rpcs_completed());
  EXPECT_GT(client.latency().Mean(), 10 * kUsec);
  EXPECT_LT(client.latency().P99(), 10 * kMsec);
  // Bidirectional byte accounting: requests + responses.
  EXPECT_GE(client.bytes_transferred(),
            client.rpcs_completed() * (32 * 1024 + 64));
}

TEST_F(TcpRpcTest, LargeResponsesStreamThroughSocketBuffers) {
  SimHost* a = AddHost();
  SimHost* b = AddHost();
  TcpRpcContext ctx;
  TcpRpcServerTask server("srv", b->cpu(), b->kstack(), 5003, &ctx);
  server.Start();
  TcpRpcClientTask::Options options;
  options.peer_hosts = {b->host_id()};
  options.rpcs_per_sec = 300;
  options.response_bytes = 1 << 20;  // 1MB >> socket buffer
  TcpRpcClientTask client("cli", a->cpu(), a->kstack(), &ctx, options);
  client.Start();
  sim_->RunFor(300 * kMsec);
  EXPECT_GT(client.rpcs_completed(), 50);
  // A 1MB response at ~20Gbps takes ~450us minimum.
  EXPECT_GT(client.latency().P50(), 300 * kUsec);
}

TEST_F(TcpRpcTest, AllToAllRackExchanges) {
  constexpr int kHosts = 4;
  std::vector<SimHost*> hosts;
  for (int i = 0; i < kHosts; ++i) {
    hosts.push_back(AddHost());
  }
  TcpRpcContext ctx;
  std::vector<std::unique_ptr<TcpRpcServerTask>> servers;
  std::vector<std::unique_ptr<TcpRpcClientTask>> clients;
  for (int i = 0; i < kHosts; ++i) {
    servers.push_back(std::make_unique<TcpRpcServerTask>(
        "srv" + std::to_string(i), hosts[i]->cpu(), hosts[i]->kstack(),
        5003, &ctx));
    servers.back()->Start();
  }
  for (int i = 0; i < kHosts; ++i) {
    TcpRpcClientTask::Options options;
    for (int j = 0; j < kHosts; ++j) {
      if (j != i) {
        options.peer_hosts.push_back(j);
      }
    }
    options.rpcs_per_sec = 500;
    options.response_bytes = 64 * 1024;
    options.rng_seed = 100 + i;
    clients.push_back(std::make_unique<TcpRpcClientTask>(
        "cli" + std::to_string(i), hosts[i]->cpu(), hosts[i]->kstack(),
        &ctx, options));
    clients.back()->Start();
  }
  sim_->RunFor(200 * kMsec);
  int64_t total_rpcs = 0;
  int64_t total_served = 0;
  for (auto& c : clients) {
    total_rpcs += c->rpcs_completed();
  }
  for (auto& s : servers) {
    total_served += s->requests_served();
  }
  EXPECT_GT(total_rpcs, 200);
  // A handful of RPCs may be mid-flight (served, response still in the
  // receive path) when the window closes.
  EXPECT_GE(total_served, total_rpcs);
  EXPECT_LE(total_served - total_rpcs, kHosts);
  // Every host both served and initiated.
  for (auto& s : servers) {
    EXPECT_GT(s->requests_served(), 0);
  }
}

TEST_F(TcpRpcTest, ResetStatsClearsWarmup) {
  SimHost* a = AddHost();
  SimHost* b = AddHost();
  TcpRpcContext ctx;
  TcpRpcServerTask server("srv", b->cpu(), b->kstack(), 5003, &ctx);
  server.Start();
  TcpRpcClientTask::Options options;
  options.peer_hosts = {b->host_id()};
  options.rpcs_per_sec = 1000;
  options.response_bytes = 4096;
  TcpRpcClientTask client("cli", a->cpu(), a->kstack(), &ctx, options);
  client.Start();
  sim_->RunFor(100 * kMsec);
  EXPECT_GT(client.rpcs_completed(), 0);
  client.ResetStats();
  EXPECT_EQ(client.rpcs_completed(), 0);
  EXPECT_EQ(client.latency().count(), 0);
  sim_->RunFor(100 * kMsec);
  EXPECT_GT(client.rpcs_completed(), 50);
}

}  // namespace
}  // namespace snap
