// Cross-module integration tests: Snap and kernel TCP sharing hosts,
// wire-version negotiation fallback, multi-client engines, control plane
// surface, scheduling-mode latency ordering, and antagonist interference
// (the qualitative claims of Sections 5.2-5.3).
#include <gtest/gtest.h>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/apps/tcp_apps.h"
#include "src/sim/antagonist.h"

namespace snap {
namespace {

SimHostOptions DedicatedOptions() {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  return options;
}

TEST(IntegrationTest, PonyAndTcpShareHostsAndFabric) {
  Simulator sim(51);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHost a(&sim, &fabric, &directory, DedicatedOptions());
  SimHost b(&sim, &fabric, &directory, DedicatedOptions());

  // Kernel TCP stream and Pony messaging at the same time on one NIC.
  TcpStreamReceiverTask tcp_rx("tcp_rx", b.cpu(), b.kstack(), 5001);
  tcp_rx.Start();
  TcpStreamSenderTask::Options tcp_options;
  tcp_options.dst_host = b.host_id();
  TcpStreamSenderTask tcp_tx("tcp_tx", a.cpu(), a.kstack(), tcp_options);
  tcp_tx.Start();

  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");
  PonyStreamReceiverTask pony_rx("pony_rx", b.cpu(), cb.get());
  pony_rx.Start();
  PonyStreamSenderTask::Options pony_options;
  pony_options.peer = eb->address();
  PonyStreamSenderTask pony_tx("pony_tx", a.cpu(), ca.get(), pony_options);
  pony_tx.Start();

  sim.RunFor(50 * kMsec);
  // Both stacks made progress; steering kept them apart.
  EXPECT_GT(tcp_rx.bytes_received(), 10 << 20);
  EXPECT_GT(pony_rx.bytes_received(), 10 << 20);
  EXPECT_EQ(eb->stats().crc_drops, 0);
}

TEST(IntegrationTest, WireVersionNegotiationFallsBackToV1) {
  Simulator sim(52);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHost a(&sim, &fabric, &directory, DedicatedOptions());
  SimHost b(&sim, &fabric, &directory, DedicatedOptions());
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  // The peer only speaks v1 (an older release still in the fleet).
  eb->SetWireVersions(1, 1);
  auto ca = a.CreateClient(ea, "appA");
  auto cb = b.CreateClient(eb, "appB");

  CpuCostSink cost;
  uint64_t stream = ca->CreateStream(eb->address());
  ca->SendMessage(eb->address(), stream, 0, {5, 5, 5}, &cost);
  sim.RunFor(10 * kMsec);
  auto msg = cb->PollMessage(&cost);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->data, (std::vector<uint8_t>{5, 5, 5}));
  // The flow negotiated down to v1 (no hardware timestamps); RTT samples
  // still flow via the software fallback.
  Flow* flow = ea->FindFlow(eb->address());
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->wire_version(), 1);
  EXPECT_GT(flow->stats().rtt_samples, 0);
}

TEST(IntegrationTest, TwoClientsOnOneEngineAreDemuxedByStream) {
  Simulator sim(53);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHost a(&sim, &fabric, &directory, DedicatedOptions());
  SimHost b(&sim, &fabric, &directory, DedicatedOptions());
  PonyEngine* ea = a.CreatePonyEngine("ea");
  PonyEngine* eb = b.CreatePonyEngine("eb");
  // Two applications sharing one engine on host A (Section 3.1: "use a
  // set of pre-loaded shared engines").
  auto app1 = a.CreateClient(ea, "app1");
  auto app2 = a.CreateClient(ea, "app2");
  auto server = b.CreateClient(eb, "server");

  PonyEchoServerTask echo("echo", b.cpu(), server.get());
  echo.Start();
  CpuCostSink cost;
  uint64_t s1 = app1->CreateStream(eb->address());
  uint64_t s2 = app2->CreateStream(eb->address());
  app1->SendMessage(eb->address(), s1, 0, {1}, &cost);
  app2->SendMessage(eb->address(), s2, 0, {2}, &cost);
  sim.RunFor(20 * kMsec);

  // Echoes come back on the right client's stream.
  auto m1 = app1->PollMessage(&cost);
  auto m2 = app2->PollMessage(&cost);
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m1->stream_id, s1);
  EXPECT_EQ(m2->stream_id, s2);
  // No crossover.
  EXPECT_FALSE(app1->PollMessage(&cost).has_value());
  EXPECT_FALSE(app2->PollMessage(&cost).has_value());
}

TEST(IntegrationTest, ControlPlaneRejectsBadRequests) {
  Simulator sim(54);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHost a(&sim, &fabric, &directory, DedicatedOptions());
  auto result = a.snap()->CreateEngine("nonexistent_module", "e", "default");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  result = a.snap()->CreateEngine("pony", "e", "nonexistent_group");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  result = a.snap()->CreateEngine("pony", "e", "default");
  ASSERT_TRUE(result.ok());
  result = a.snap()->CreateEngine("pony", "e", "default");
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST(IntegrationTest, MailboxControlActionRunsOnEngineThread) {
  Simulator sim(55);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHost a(&sim, &fabric, &directory, DedicatedOptions());
  PonyEngine* engine = a.CreatePonyEngine("e");
  sim.RunFor(1 * kMsec);
  // Post a control action (e.g. a policy update) through the instance.
  bool ran = false;
  a.snap()->PostToEngine(engine, [&ran] { ran = true; });
  sim.RunFor(1 * kMsec);
  EXPECT_TRUE(ran);
}

// Scheduling-mode latency ordering under idle conditions (Figure 7(a)
// mechanism): a spin-polling mode dodges C-state exit latency; a blocking
// mode pays it.
TEST(IntegrationTest, SpinPollingAvoidsCStateLatencyAtLowQps) {
  auto run = [&](SchedulingMode mode) {
    Simulator sim(56);
    Fabric fabric(&sim, NicParams{});
    PonyDirectory directory;
    SimHostOptions options;
    options.group.mode = mode;
    options.group.dedicated_cores = {0};
    SimHost a(&sim, &fabric, &directory, options);
    SimHost b(&sim, &fabric, &directory, options);
    PonyEngine* ea = a.CreatePonyEngine("ea");
    PonyEngine* eb = b.CreatePonyEngine("eb");
    auto ca = a.CreateClient(ea, "appA");
    auto cb = b.CreateClient(eb, "appB");
    uint64_t region = cb->RegisterRegion(4096, false);
    // Low QPS one-sided pings: 1 per ms, enough idle time for deep
    // C-states on blocking designs. Client app spins (isolates transport
    // wakeup, Section 5.3).
    PonyPingTask::Options ping_options;
    ping_options.peer = eb->address();
    ping_options.one_sided = true;
    ping_options.region_id = region;
    ping_options.spin = true;
    ping_options.iterations = 1;
    Histogram latency;
    for (int i = 0; i < 50; ++i) {
      PonyPingTask ping("ping" + std::to_string(i), a.cpu(), ca.get(),
                        ping_options);
      ping.Start();
      sim.RunFor(1 * kMsec);
      latency.Merge(ping.latency());
    }
    return latency;
  };
  Histogram compacting = run(SchedulingMode::kCompactingEngines);
  Histogram spreading = run(SchedulingMode::kSpreadingEngines);
  EXPECT_EQ(compacting.count(), 50);
  EXPECT_EQ(spreading.count(), 50);
  // Spreading blocks between pings -> C-state exits inflate latency;
  // compacting's primary spins and dodges them.
  EXPECT_GT(spreading.Mean(), compacting.Mean() * 1.5);
}

// Figure 7(b) mechanism: a non-preemptible-kernel-section antagonist hurts
// interrupt-driven (spreading) engines but not a spinning primary that
// owns its core.
TEST(IntegrationTest, KernelSectionAntagonistHurtsBlockingModes) {
  auto run = [&](SchedulingMode mode, bool antagonist) {
    Simulator sim(57);
    Fabric fabric(&sim, NicParams{});
    PonyDirectory directory;
    SimHostOptions options;
    options.group.mode = mode;
    options.group.dedicated_cores = {0};
    options.cpu.num_cores = 2;  // tight machine: interference is likely
    SimHost a(&sim, &fabric, &directory, options);
    SimHost b(&sim, &fabric, &directory, options);
    PonyEngine* ea = a.CreatePonyEngine("ea");
    PonyEngine* eb = b.CreatePonyEngine("eb");
    auto ca = a.CreateClient(ea, "appA");
    auto cb = b.CreateClient(eb, "appB");
    uint64_t region = cb->RegisterRegion(4096, false);
    Rng rng(99);
    std::vector<std::unique_ptr<KernelSectionTask>> antagonists;
    if (antagonist) {
      for (SimHost* h : {&a, &b}) {
        for (int i = 0; i < 2; ++i) {
          antagonists.push_back(std::make_unique<KernelSectionTask>(
              "mmap" + std::to_string(i), h->cpu(), &rng,
              KernelSectionTask::Options{}));
          antagonists.back()->Start();
        }
      }
    }
    PonyPingTask::Options ping_options;
    ping_options.peer = eb->address();
    ping_options.one_sided = true;
    ping_options.region_id = region;
    ping_options.spin = true;
    ping_options.iterations = 300;
    PonyPingTask ping("ping", a.cpu(), ca.get(), ping_options);
    ping.Start();
    sim.RunFor(3000 * kMsec);
    EXPECT_TRUE(ping.done());
    return ping.latency().P99();
  };
  int64_t spreading_clean =
      run(SchedulingMode::kSpreadingEngines, false);
  int64_t spreading_antagonized =
      run(SchedulingMode::kSpreadingEngines, true);
  // The antagonist's non-preemptible sections visibly inflate the tail of
  // the interrupt-driven engine.
  EXPECT_GT(spreading_antagonized, spreading_clean * 2);
}

}  // namespace
}  // namespace snap
