// Unit tests for the chaos-injection link and the invariant checker:
// each ChaosLink failure mode in isolation (Gilbert-Elliott loss
// statistics, bounded reordering, clean duplication, CRC-detectable
// corruption, timeout release, determinism), the cumulative-credit
// healing path at the flow layer, and every InvariantChecker predicate
// firing on a hand-built violation.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/net/fabric.h"
#include "src/packet/wire.h"
#include "src/pony/flow.h"
#include "src/sim/simulator.h"
#include "src/testing/chaos.h"
#include "src/testing/invariants.h"

namespace snap {
namespace {

// A wire-realistic Pony data packet (CRC stamped like Flow::MakePacket).
PacketPtr MakePacket(uint64_t seq, int payload_bytes = 64) {
  auto p = std::make_unique<Packet>();
  p->src_host = 0;
  p->dst_host = 1;
  p->proto = WireProtocol::kPony;
  p->pony.version = 2;
  p->pony.flow_id = 5;
  p->pony.seq = seq;
  p->pony.type = PonyPacketType::kData;
  if (payload_bytes > 0) {
    p->data.assign(static_cast<size_t>(payload_bytes),
                   static_cast<uint8_t>(seq));
  }
  p->payload_bytes = payload_bytes;
  p->wire_bytes = payload_bytes + 64;
  p->pony.crc32 = 0;
  p->pony.crc32 = PonyPacketCrc(p->pony, p->data);
  return p;
}

class ChaosLinkTest : public ::testing::Test {
 protected:
  ChaosLinkTest() : sim_(7) {}

  // Builds a link whose output lands in delivered_.
  std::unique_ptr<ChaosLink> MakeLink(const ChaosProfile& profile) {
    return std::make_unique<ChaosLink>(
        &sim_, profile, [this](PacketPtr p, SimTime) {
          delivered_.push_back(std::move(p));
        });
  }

  Simulator sim_;
  std::vector<PacketPtr> delivered_;
};

TEST_F(ChaosLinkTest, CleanProfileForwardsEverythingInOrder) {
  auto link = MakeLink(ChaosProfile{});
  for (uint64_t i = 1; i <= 1000; ++i) {
    link->Process(MakePacket(i), sim_.now());
  }
  ASSERT_EQ(delivered_.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(delivered_[i]->pony.seq, i + 1);
  }
  EXPECT_EQ(link->stats().dropped, 0);
  EXPECT_EQ(link->stats().duplicated, 0);
  EXPECT_EQ(link->stats().corrupted, 0);
  EXPECT_EQ(link->stats().reordered, 0);
  EXPECT_EQ(link->stats().forwarded, 1000);
}

TEST_F(ChaosLinkTest, GilbertElliottLossIsBurstyAtConfiguredRate) {
  ChaosProfile profile;
  profile.name = "ge";
  profile.p_good_to_bad = 0.02;
  profile.p_bad_to_good = 0.25;
  profile.loss_good = 0.0;
  profile.loss_bad = 1.0;  // drops == packets seen in the bad state
  profile.seed = 99;
  auto link = MakeLink(profile);

  constexpr int kPackets = 20000;
  std::vector<bool> dropped;
  dropped.reserve(kPackets);
  for (uint64_t i = 1; i <= kPackets; ++i) {
    size_t before = delivered_.size();
    link->Process(MakePacket(i), sim_.now());
    dropped.push_back(delivered_.size() == before);
  }

  // Stationary bad-state fraction: 0.02 / (0.02 + 0.25) ~= 7.4%.
  double loss_rate =
      static_cast<double>(link->stats().dropped) / kPackets;
  EXPECT_GT(loss_rate, 0.04);
  EXPECT_LT(loss_rate, 0.12);

  // Mean drop-burst length: geometric with exit probability 0.25 -> ~4.
  int bursts = 0;
  int64_t burst_packets = 0;
  for (int i = 0; i < kPackets; ++i) {
    if (dropped[i]) {
      ++burst_packets;
      if (i == 0 || !dropped[i - 1]) {
        ++bursts;
      }
    }
  }
  ASSERT_GT(bursts, 0);
  double mean_burst = static_cast<double>(burst_packets) / bursts;
  EXPECT_GT(mean_burst, 2.5);
  EXPECT_LT(mean_burst, 6.0);
}

TEST_F(ChaosLinkTest, ReorderDisplacementBounded) {
  ChaosProfile profile;
  profile.reorder_probability = 0.3;
  profile.reorder_span = 4;
  profile.seed = 3;
  auto link = MakeLink(profile);

  constexpr uint64_t kPackets = 2000;
  for (uint64_t i = 1; i <= kPackets; ++i) {
    link->Process(MakePacket(i), sim_.now());
  }
  link->FlushHeld();

  ASSERT_EQ(delivered_.size(), kPackets);
  EXPECT_GT(link->stats().reordered, 0);
  // Exactly-once: every seq appears once.
  std::vector<uint64_t> seqs;
  for (const auto& p : delivered_) {
    seqs.push_back(p->pony.seq);
  }
  std::vector<uint64_t> sorted = seqs;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < kPackets; ++i) {
    ASSERT_EQ(sorted[i], i + 1);
  }
  // Bounded displacement: at most reorder_span later packets overtake any
  // held packet.
  bool any_displaced = false;
  for (size_t i = 0; i < seqs.size(); ++i) {
    int overtakers = 0;
    for (size_t j = 0; j < i; ++j) {
      if (seqs[j] > seqs[i]) {
        ++overtakers;
      }
    }
    EXPECT_LE(overtakers, profile.reorder_span)
        << "seq " << seqs[i] << " overtaken by " << overtakers;
    if (overtakers > 0) {
      any_displaced = true;
    }
  }
  EXPECT_TRUE(any_displaced);
}

TEST_F(ChaosLinkTest, DuplicationDeliversCleanExtraCopies) {
  ChaosProfile profile;
  profile.duplicate_probability = 0.5;
  profile.seed = 11;
  auto link = MakeLink(profile);

  constexpr int kPackets = 1000;
  for (uint64_t i = 1; i <= kPackets; ++i) {
    link->Process(MakePacket(i), sim_.now());
  }
  sim_.RunAll();  // flush delayed duplicate deliveries

  EXPECT_GT(link->stats().duplicated, 350);
  EXPECT_LT(link->stats().duplicated, 650);
  EXPECT_EQ(delivered_.size(),
            static_cast<size_t>(kPackets + link->stats().duplicated));
  // Every copy (original and duplicate) still passes CRC.
  for (const auto& p : delivered_) {
    EXPECT_FALSE(p->chaos_corrupted);
    EXPECT_TRUE(VerifyPonyPacketCrc(p->pony, p->data));
  }
}

TEST_F(ChaosLinkTest, CorruptionAlwaysCaughtByCrc) {
  ChaosProfile profile;
  profile.corrupt_probability = 1.0;
  profile.seed = 17;
  auto link = MakeLink(profile);

  constexpr int kPackets = 200;
  for (uint64_t i = 1; i <= kPackets; ++i) {
    // Half with payloads (payload bit flips), half header-only (header
    // field bit flips); both must be CRC-detectable.
    link->Process(MakePacket(i, i % 2 == 0 ? 128 : 0), sim_.now());
  }

  EXPECT_EQ(link->stats().corrupted, kPackets);
  ASSERT_EQ(delivered_.size(), static_cast<size_t>(kPackets));
  for (const auto& p : delivered_) {
    EXPECT_TRUE(p->chaos_corrupted);
    EXPECT_FALSE(VerifyPonyPacketCrc(p->pony, p->data))
        << "seq " << p->pony.seq << ": bit flip not detected by CRC";
  }
}

TEST_F(ChaosLinkTest, ReorderTimeoutReleasesStarvedHolds) {
  ChaosProfile profile;
  profile.reorder_probability = 1.0;  // everything held, nothing passes
  profile.reorder_span = 8;
  profile.reorder_max_hold = 1 * kMsec;
  auto link = MakeLink(profile);

  for (uint64_t i = 1; i <= 5; ++i) {
    link->Process(MakePacket(i), sim_.now());
  }
  EXPECT_EQ(link->held_now(), 5);
  sim_.RunFor(2 * kMsec);
  EXPECT_EQ(link->held_now(), 0);
  EXPECT_EQ(delivered_.size(), 5u);
  EXPECT_EQ(link->stats().reorder_timeouts, 5);
}

TEST_F(ChaosLinkTest, SameSeedSameChaos) {
  ChaosProfile profile;
  profile.p_good_to_bad = 0.05;
  profile.p_bad_to_good = 0.3;
  profile.loss_bad = 0.8;
  profile.reorder_probability = 0.1;
  profile.duplicate_probability = 0.05;
  profile.corrupt_probability = 0.05;
  profile.seed = 1234;

  auto run = [&profile]() {
    Simulator sim(7);
    std::vector<std::pair<uint64_t, bool>> out;  // (seq, corrupted)
    ChaosLink link(&sim, profile, [&out](PacketPtr p, SimTime) {
      out.emplace_back(p->pony.seq, p->chaos_corrupted);
    });
    for (uint64_t i = 1; i <= 3000; ++i) {
      link.Process(MakePacket(i), sim.now());
    }
    sim.RunAll();
    link.FlushHeld();
    return out;
  };
  EXPECT_EQ(run(), run());
}

// --- Cumulative-credit healing (flow layer) -------------------------------

TEST(FlowCreditChaosTest, LaterPacketHealsLostCreditGrant) {
  PonyParams params;
  Flow sender({1, 10}, /*local_host=*/0, /*local_engine=*/5, 2,
              TimelyParams{}, &params);
  Flow receiver({0, 5}, /*local_host=*/1, /*local_engine=*/10, 2,
                TimelyParams{}, &params);

  auto send_message = [&](SimTime now) {
    TxRecord rec;
    rec.header.type = PonyPacketType::kData;
    rec.header.op_id = 1;
    rec.header.stream_id = 1;
    rec.header.msg_length = 64 * 1024;
    rec.payload_bytes = 64 * 1024;
    rec.uses_credit = true;
    sender.QueueTx(std::move(rec));
    PacketPtr p = sender.BuildNextPacket(now);
    EXPECT_NE(p, nullptr);
    receiver.OnReceive(*p, now);
    receiver.NoteDelivered(64 * 1024);
  };

  send_message(0);
  EXPECT_EQ(sender.credit(), Flow::kInitialCreditBytes - 64 * 1024);
  PacketPtr grant1 = receiver.MaybeBuildCreditGrant(10 * kUsec);
  ASSERT_NE(grant1, nullptr);
  // grant1 is LOST: without the cumulative scheme those 64 KiB would leak
  // from the sender's pool forever (grants are unsequenced, never
  // retransmitted).

  send_message(1 * kMsec);
  EXPECT_EQ(sender.credit(), Flow::kInitialCreditBytes - 2 * 64 * 1024);
  PacketPtr grant2 = receiver.MaybeBuildCreditGrant(1 * kMsec + 10 * kUsec);
  ASSERT_NE(grant2, nullptr);
  // The second grant carries the cumulative count (both grants).
  EXPECT_EQ(grant2->pony.credit, 2u * 64 * 1024);
  sender.OnReceive(*grant2, 2 * kMsec);
  EXPECT_EQ(sender.credit(), Flow::kInitialCreditBytes);

  // And the checker's conservation equation balances.
  Simulator sim(1);
  InvariantChecker checker(&sim);
  checker.CheckCreditConservation(sender, receiver, "pair");
  EXPECT_TRUE(checker.ok()) << checker.ViolationSummary();
}

// --- Self-verifying payloads ----------------------------------------------

TEST(ChaosPayloadTest, RoundTripAndTamperDetection) {
  auto payload = EncodeChaosPayload(7, 42, 300);
  ASSERT_EQ(payload.size(), 300u);
  uint64_t stream = 0;
  uint64_t index = 0;
  std::string error;
  EXPECT_TRUE(DecodeChaosPayload(payload, &stream, &index, &error)) << error;
  EXPECT_EQ(stream, 7u);
  EXPECT_EQ(index, 42u);

  // Any single flipped bit is caught, wherever it lands.
  for (size_t pos : {size_t{0}, size_t{5}, size_t{20}, size_t{299}}) {
    auto tampered = payload;
    tampered[pos] ^= 0x10;
    EXPECT_FALSE(DecodeChaosPayload(tampered, &stream, &index, &error))
        << "flip at byte " << pos << " undetected";
  }
  // Truncation is caught (length field mismatch).
  auto truncated = payload;
  truncated.resize(200);
  EXPECT_FALSE(DecodeChaosPayload(truncated, &stream, &index, &error));
}

// --- InvariantChecker predicates on hand-built violations -----------------

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : sim_(5), checker_(&sim_) {}

  PonyIncomingMessage Message(uint64_t stream_id, uint64_t index) {
    PonyIncomingMessage msg;
    msg.stream_id = stream_id;
    msg.data = EncodeChaosPayload(stream_id, index, 64);
    msg.length = static_cast<int64_t>(msg.data.size());
    return msg;
  }

  bool Fired(const std::string& check) const {
    for (const Violation& v : checker_.violations()) {
      if (v.check == check) {
        return true;
      }
    }
    return false;
  }

  Simulator sim_;
  InvariantChecker checker_;
};

TEST_F(CheckerTest, AcceptsCleanInOrderDeliveries) {
  for (uint64_t i = 0; i < 5; ++i) {
    checker_.OnDelivery("A", Message(1, i));
  }
  EXPECT_TRUE(checker_.ok()) << checker_.ViolationSummary();
  EXPECT_EQ(checker_.delivered("A", 1), 5);
}

TEST_F(CheckerTest, DetectsDuplicateDelivery) {
  checker_.OnDelivery("A", Message(1, 0));
  checker_.OnDelivery("A", Message(1, 1));
  checker_.OnDelivery("A", Message(1, 0));  // replayed
  EXPECT_TRUE(Fired("duplicate-delivery")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsOutOfOrderDelivery) {
  checker_.OnDelivery("A", Message(1, 1));  // overtook message 0
  EXPECT_TRUE(Fired("out-of-order-delivery")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsCorruptPayloadDelivery) {
  PonyIncomingMessage msg = Message(1, 0);
  msg.data[30] ^= 0x01;  // bit flip that slipped past every CRC
  checker_.OnDelivery("A", msg);
  EXPECT_TRUE(Fired("payload-integrity")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsStreamMismatch) {
  PonyIncomingMessage msg = Message(1, 0);
  msg.stream_id = 2;  // delivered on the wrong stream
  checker_.OnDelivery("A", msg);
  EXPECT_TRUE(Fired("stream-mismatch")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsAckRegression) {
  checker_.NoteFlowSample("f", 10, 10);
  checker_.NoteFlowSample("f", 5, 10);
  EXPECT_TRUE(Fired("ack-monotonicity")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsReceivePointRegression) {
  checker_.NoteFlowSample("f", 10, 10);
  checker_.NoteFlowSample("f", 10, 3);
  EXPECT_TRUE(Fired("rcv-monotonicity")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsCreditLeak) {
  PonyParams params;
  Flow sender({1, 10}, 0, 5, 2, TimelyParams{}, &params);
  Flow receiver({0, 5}, 1, 10, 2, TimelyParams{}, &params);
  // A forged grant inflates the sender's pool past what the receiver ever
  // granted — conservation must flag it.
  Packet forged;
  forged.pony.flow_id = (10ull << 32) | 5ull;
  forged.pony.type = PonyPacketType::kCredit;
  forged.pony.seq = 0;
  forged.pony.credit = 1000;
  sender.OnReceive(forged, 0);
  EXPECT_EQ(sender.credit(), Flow::kInitialCreditBytes + 1000);
  checker_.CheckCreditConservation(sender, receiver, "pair");
  EXPECT_TRUE(Fired("credit-conservation")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsIncompleteDelivery) {
  checker_.ExpectDeliveries("A", 1, 5);
  checker_.OnDelivery("A", Message(1, 0));
  checker_.OnDelivery("A", Message(1, 1));
  checker_.CheckFinal(/*require_quiesce=*/false);
  EXPECT_TRUE(Fired("completeness")) << checker_.ViolationSummary();
}

TEST_F(CheckerTest, DetectsPacketConservationViolation) {
  Fabric fabric(&sim_, NicParams{});
  fabric.AddHost();
  fabric.AddHost();
  checker_.AttachFabric(&fabric);
  // A packet materializes at the port queue without ever being transmitted
  // by a NIC: conservation must notice the books don't balance.
  auto p = MakePacket(1);
  fabric.EnqueueAtPort(std::move(p), sim_.now());
  sim_.RunAll();
  checker_.CheckFinal(/*require_quiesce=*/true);
  EXPECT_TRUE(Fired("packet-conservation")) << checker_.ViolationSummary();
}

}  // namespace
}  // namespace snap
