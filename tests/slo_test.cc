// Tenant SLO monitor tests: multi-window burn-rate semantics on synthetic
// feeds, deterministic alert timing, and the end-to-end scenario the
// monitor exists for — a transparent upgrade's blackout window driving a
// tenant's latency SLO into a deterministic alert.
#include <gtest/gtest.h>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"
#include "src/qos/slo.h"
#include "src/snap/upgrade.h"
#include "src/stats/trace.h"

namespace snap {
namespace {

using qos::SloAlertEvent;
using qos::SloMonitor;
using qos::SloTarget;

SloMonitor::Options SmallOptions() {
  SloMonitor::Options o;
  o.slot_width = 1 * kMsec;
  o.fast_window_slots = 5;
  o.slow_window_slots = 60;
  return o;
}

TEST(SloMonitorTest, AllBadTrafficFiresAtFirstSlotBoundary) {
  SloMonitor mon(SmallOptions());
  SloTarget target;
  target.latency_threshold = 100 * kUsec;
  target.latency_objective = 0.999;
  mon.SetTarget(1, "t1", target);

  // Ten requests, all over threshold, inside slot 0.
  for (int i = 0; i < 10; ++i) {
    mon.RecordLatency(1, i * 10 * kUsec, 5 * kMsec);
  }
  EXPECT_FALSE(mon.latency_firing(1));  // slot still open
  mon.Advance(1 * kMsec);
  ASSERT_TRUE(mon.latency_firing(1));
  ASSERT_EQ(mon.events().size(), 1u);
  const SloAlertEvent& e = mon.events()[0];
  EXPECT_STREQ(e.kind, "latency");
  EXPECT_TRUE(e.firing);
  EXPECT_EQ(e.at, 1 * kMsec);  // the slot boundary, not a request time
  // 100% bad over a 0.1% budget = burn 1000x = 1000000 milli.
  EXPECT_EQ(e.fast_burn_milli, 1000000);
  EXPECT_EQ(e.slow_burn_milli, 1000000);
}

TEST(SloMonitorTest, GoodTrafficWithinBudgetNeverFires) {
  SloMonitor mon(SmallOptions());
  SloTarget target;
  target.latency_threshold = 100 * kUsec;
  mon.SetTarget(1, "t1", target);
  for (int slot = 0; slot < 100; ++slot) {
    for (int i = 0; i < 20; ++i) {
      mon.RecordLatency(1, slot * kMsec + i * 10 * kUsec, 50 * kUsec);
    }
  }
  mon.Advance(100 * kMsec);
  EXPECT_FALSE(mon.latency_firing(1));
  EXPECT_TRUE(mon.events().empty());
  EXPECT_EQ(mon.fast_burn_milli(1), 0);
}

TEST(SloMonitorTest, ClearsOnlyWhenSlowWindowForgetsTheBurst) {
  SloMonitor mon(SmallOptions());
  SloTarget target;
  target.latency_threshold = 100 * kUsec;
  mon.SetTarget(1, "t1", target);

  // One all-bad slot, then all-good forever.
  for (int i = 0; i < 10; ++i) {
    mon.RecordLatency(1, i * 10 * kUsec, 5 * kMsec);
  }
  for (int slot = 1; slot < 80; ++slot) {
    for (int i = 0; i < 10; ++i) {
      mon.RecordLatency(1, slot * kMsec + i * 10 * kUsec, 50 * kUsec);
    }
  }
  mon.Advance(80 * kMsec);
  ASSERT_EQ(mon.events().size(), 2u);
  EXPECT_TRUE(mon.events()[0].firing);
  EXPECT_EQ(mon.events()[0].at, 1 * kMsec);
  EXPECT_FALSE(mon.events()[1].firing);
  // The fast window forgets the burst after 5 slots, but the slow window
  // holds it for its full 60: 10 bad of 600 = burn 16.7x > 6x. The alert
  // clears exactly when the bad slot leaves the slow window.
  EXPECT_EQ(mon.events()[1].at, 61 * kMsec);
  EXPECT_FALSE(mon.latency_firing(1));
}

TEST(SloMonitorTest, ThrottlesCountAgainstTheLatencyBudget) {
  SloMonitor mon(SmallOptions());
  SloTarget target;
  target.latency_threshold = 100 * kUsec;
  mon.SetTarget(1, "t1", target);
  for (int i = 0; i < 10; ++i) {
    mon.RecordThrottle(1, i * 10 * kUsec);
  }
  mon.Advance(1 * kMsec);
  EXPECT_TRUE(mon.latency_firing(1));
}

TEST(SloMonitorTest, GoodputFloorFiresOnSustainedStarvation) {
  SloMonitor mon(SmallOptions());
  SloTarget target;
  target.min_goodput_bytes_per_sec = 1000000;  // 1000 bytes per 1ms slot
  mon.SetTarget(1, "t1", target);

  // Healthy goodput for 60 slots, then starvation.
  for (int slot = 0; slot < 60; ++slot) {
    mon.RecordGoodput(1, slot * kMsec, 2000);
  }
  mon.Advance(60 * kMsec);
  EXPECT_FALSE(mon.goodput_firing(1));
  mon.Advance(120 * kMsec);  // 60 empty slots close
  ASSERT_TRUE(mon.goodput_firing(1));
  // Fast window all-bad fires at 20x immediately; the slow window (5%
  // budget, 6x threshold) needs bad_slots/60 * 20 > 6, i.e. 19 bad slots:
  // boundary 60+19 = 79ms.
  const SloAlertEvent* fire = nullptr;
  for (const SloAlertEvent& e : mon.events()) {
    if (e.kind == std::string("goodput") && e.firing) fire = &e;
  }
  ASSERT_NE(fire, nullptr);
  EXPECT_EQ(fire->at, 79 * kMsec);
}

TEST(SloMonitorTest, UnknownTenantIsIgnored) {
  SloMonitor mon(SmallOptions());
  mon.RecordLatency(42, 0, 5 * kMsec);
  mon.RecordThrottle(42, 0);
  mon.RecordGoodput(42, 0, 100);
  mon.Advance(10 * kMsec);
  EXPECT_TRUE(mon.events().empty());
  EXPECT_FALSE(mon.latency_firing(42));
}

TEST(SloMonitorTest, ExportsAreDeterministicAndComplete) {
  auto feed = [](SloMonitor* mon) {
    SloTarget target;
    target.latency_threshold = 100 * kUsec;
    mon->SetTarget(1, "web", target);
    mon->SetTarget(2, "batch", target);
    for (int i = 0; i < 10; ++i) {
      mon->RecordLatency(1, i * 10 * kUsec, 5 * kMsec);
      mon->RecordLatency(2, i * 10 * kUsec, 50 * kUsec);
    }
    mon->Advance(3 * kMsec);
  };
  SloMonitor a(SmallOptions());
  SloMonitor b(SmallOptions());
  Telemetry telemetry;
  TraceRecorder trace;
  a.set_telemetry(&telemetry);
  a.set_tracer(&trace);
  feed(&a);
  feed(&b);
  EXPECT_EQ(a.SnapshotJson(), b.SnapshotJson());
  EXPECT_NE(a.SnapshotJson().find("\"web\""), std::string::npos);
  EXPECT_EQ(telemetry.GetCounter("qos/slo/web/latency_alerts")->value(), 1);
  // The fire instant landed on the SLO track at the slot boundary.
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].tid, TraceRecorder::kSloTrack);
  EXPECT_EQ(trace.events()[0].name, "slo_fire:web/latency");
  EXPECT_EQ(trace.events()[0].ts, 1 * kMsec);
}

// --- End-to-end: an upgrade blackout burns a tenant's latency SLO -------

struct ScenarioResult {
  std::vector<SloAlertEvent> events;
  SimTime upgrade_started = 0;
  int64_t completions = 0;
};

// RPC client on host A against a server on host B; at 200ms an upgrade of
// host A's Snap instance begins, and its ~45ms blackout delays responses
// far past the tenant's 2ms threshold. The monitor hangs off the client's
// completion listener — pure observation, so the simulation timeline is
// identical with and without it.
ScenarioResult RunUpgradeBrownoutScenario() {
  ScenarioResult out;
  Simulator sim(71);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  SimHost a(&sim, &fabric, &directory, options);
  SimHost b(&sim, &fabric, &directory, options);
  PonyEngine* ea = a.CreatePonyEngine("engine0");
  PonyEngine* eb = b.CreatePonyEngine("peer");
  auto ca = a.CreateClient(ea, "app");
  auto cb = b.CreateClient(eb, "peer_app");

  PonyRpcServerTask server("rpc_server", b.cpu(), cb.get());
  server.Start();
  PonyRpcClientTask::Options client_options;
  client_options.peers = {eb->address()};
  client_options.rpcs_per_sec = 2000.0;
  client_options.request_bytes = 64;
  client_options.response_bytes = 512;
  client_options.rng_seed = 9;
  PonyRpcClientTask client("rpc_client", a.cpu(), ca.get(), client_options);

  SloMonitor::Options mon_options;
  mon_options.slot_width = 1 * kMsec;
  SloMonitor monitor(mon_options);
  SloTarget target;
  target.latency_threshold = 2 * kMsec;
  target.latency_objective = 0.999;
  monitor.SetTarget(1, "tenant_a", target);
  client.set_completion_listener(
      [&](SimTime now, SimDuration latency, int64_t bytes) {
        monitor.RecordLatency(1, now, latency);
        monitor.RecordGoodput(1, now, bytes);
        ++out.completions;
      });
  client.Start();

  // Healthy traffic fills the burn windows with good slots.
  sim.RunFor(200 * kMsec);

  auto v2 = std::make_unique<SnapInstance>("snap-v2", &sim, a.cpu(), a.nic());
  v2->RegisterModule(std::make_unique<PonyModule>(
      &sim, a.nic(), &directory, a.options().pony, a.options().timely,
      a.options().app));
  EngineGroup::Options group_options;
  group_options.mode = SchedulingMode::kDedicatedCores;
  group_options.dedicated_cores = {1};
  v2->CreateGroup("default", group_options);
  UpgradeManager manager(&sim, UpgradeParams{});
  out.upgrade_started = sim.now();
  bool done = false;
  manager.StartUpgrade(a.snap(), v2.get(), [&](const auto&) { done = true; });
  sim.RunFor(800 * kMsec);
  EXPECT_TRUE(done);
  monitor.Advance(sim.now());
  out.events = monitor.events();
  return out;
}

TEST(SloScenarioTest, UpgradeBlackoutFiresLatencyAlertDeterministically) {
  ScenarioResult first = RunUpgradeBrownoutScenario();
  ASSERT_GT(first.completions, 0);

  // The blackout's delayed completions must have fired the latency SLO,
  // after the upgrade started, at a slot boundary.
  const SloAlertEvent* fire = nullptr;
  for (const SloAlertEvent& e : first.events) {
    if (e.kind == std::string("latency") && e.firing) {
      fire = &e;
      break;
    }
  }
  ASSERT_NE(fire, nullptr) << "blackout did not trip the latency SLO";
  EXPECT_GT(fire->at, first.upgrade_started);
  EXPECT_EQ(fire->at % (1 * kMsec), 0);
  EXPECT_GT(fire->fast_burn_milli, 14400);

  // Deterministic per seed: a second identical run reproduces the exact
  // alert sequence — kinds, directions, boundary times, burn values.
  ScenarioResult second = RunUpgradeBrownoutScenario();
  ASSERT_EQ(second.events.size(), first.events.size());
  for (size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_STREQ(second.events[i].kind, first.events[i].kind);
    EXPECT_EQ(second.events[i].firing, first.events[i].firing);
    EXPECT_EQ(second.events[i].at, first.events[i].at);
    EXPECT_EQ(second.events[i].fast_burn_milli,
              first.events[i].fast_burn_milli);
    EXPECT_EQ(second.events[i].slow_burn_milli,
              first.events[i].slow_burn_milli);
  }
}

}  // namespace
}  // namespace snap
