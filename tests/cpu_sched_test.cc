// Tests of the CPU model: scheduling classes, MicroQuanta bandwidth and
// preemption latency, C-states, non-preemptible sections, spin parking,
// work stealing, and accounting.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/antagonist.h"
#include "src/sim/cpu.h"

namespace snap {
namespace {

// Consumes a fixed amount of CPU then blocks until woken again.
class BurstTask : public SimTask {
 public:
  BurstTask(std::string name, SchedClass cls, SimDuration burst,
            double weight = 1.0)
      : SimTask(std::move(name), cls, weight), burst_(burst) {}

  StepResult Step(SimTime now, SimDuration budget) override {
    if (first_run_time_ < 0) {
      first_run_time_ = now;
    }
    StepResult r;
    if (remaining_ == 0) {
      remaining_ = burst_;
    }
    r.cpu_ns = std::min(remaining_, budget);
    remaining_ -= r.cpu_ns;
    r.next = remaining_ > 0 ? StepResult::Next::kYield
                            : StepResult::Next::kBlock;
    if (remaining_ == 0) {
      ++bursts_done_;
      first_run_time_ = -1;
      last_done_time_ = now + r.cpu_ns;
    }
    return r;
  }

  int bursts_done() const { return bursts_done_; }
  SimTime last_done_time() const { return last_done_time_; }

 private:
  SimDuration burst_;
  SimDuration remaining_ = 0;
  SimTime first_run_time_ = -1;
  SimTime last_done_time_ = 0;
  int bursts_done_ = 0;
};

// Always-runnable CPU hog.
class HogTask : public SimTask {
 public:
  HogTask(std::string name, SchedClass cls, double weight = 1.0)
      : SimTask(std::move(name), cls, weight) {}

  StepResult Step(SimTime now, SimDuration budget) override {
    StepResult r;
    r.cpu_ns = budget;
    r.next = StepResult::Next::kYield;
    return r;
  }
};

class CpuSchedTest : public ::testing::Test {
 protected:
  void Init(int cores) {
    params_.num_cores = cores;
    sched_ = std::make_unique<CpuScheduler>(&sim_, params_);
  }

  Simulator sim_;
  CpuParams params_;
  std::unique_ptr<CpuScheduler> sched_;
};

TEST_F(CpuSchedTest, TaskRunsAndConsumesCpu) {
  Init(1);
  BurstTask task("t", SchedClass::kCfs, 10 * kUsec);
  sched_->AddTask(&task);
  sched_->Wake(&task, false);
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(task.bursts_done(), 1);
  EXPECT_EQ(task.cpu_consumed_ns(), 10 * kUsec);
}

TEST_F(CpuSchedTest, BlockedTaskDoesNotRunUntilWoken) {
  Init(1);
  BurstTask task("t", SchedClass::kCfs, 5 * kUsec);
  sched_->AddTask(&task);
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(task.bursts_done(), 0);
  sched_->Wake(&task, false);
  sim_.RunFor(1 * kMsec);
  EXPECT_EQ(task.bursts_done(), 1);
}

TEST_F(CpuSchedTest, WakeAtFiresAtRequestedTime) {
  Init(1);
  BurstTask task("t", SchedClass::kCfs, 1 * kUsec);
  sched_->AddTask(&task);
  sched_->WakeAt(&task, 500 * kUsec);
  sim_.RunFor(499 * kUsec);
  EXPECT_EQ(task.bursts_done(), 0);
  sim_.RunFor(100 * kUsec);
  EXPECT_EQ(task.bursts_done(), 1);
}

TEST_F(CpuSchedTest, TwoCfsTasksShareOneCoreFairly) {
  Init(1);
  HogTask a("a", SchedClass::kCfs);
  HogTask b("b", SchedClass::kCfs);
  sched_->AddTask(&a);
  sched_->AddTask(&b);
  sched_->Wake(&a, false);
  sched_->Wake(&b, false);
  sim_.RunFor(100 * kMsec);
  double total = static_cast<double>(a.cpu_consumed_ns() +
                                     b.cpu_consumed_ns());
  double share_a = static_cast<double>(a.cpu_consumed_ns()) / total;
  EXPECT_NEAR(share_a, 0.5, 0.1);
  // The core was ~fully utilized.
  EXPECT_NEAR(total, 100e6, 10e6);
}

TEST_F(CpuSchedTest, TasksSpreadAcrossIdleCores) {
  Init(4);
  HogTask a("a", SchedClass::kCfs);
  HogTask b("b", SchedClass::kCfs);
  HogTask c("c", SchedClass::kCfs);
  for (HogTask* t : {&a, &b, &c}) {
    sched_->AddTask(t);
    sched_->Wake(t, false);
  }
  sim_.RunFor(10 * kMsec);
  // With 4 cores and 3 hogs, everyone runs at full speed.
  for (HogTask* t : {&a, &b, &c}) {
    EXPECT_GT(t->cpu_consumed_ns(), 9 * kMsec);
  }
}

TEST_F(CpuSchedTest, MicroQuantaPreemptsCfsWithinMicroseconds) {
  Init(1);
  HogTask hog("hog", SchedClass::kCfs);
  sched_->AddTask(&hog);
  sched_->Wake(&hog, false);
  sim_.RunFor(5 * kMsec);  // hog owns the core

  BurstTask mq("mq", SchedClass::kMicroQuanta, 1 * kUsec);
  Histogram latency;
  mq.set_sched_latency_histogram(&latency);
  sched_->AddTask(&mq);
  for (int i = 0; i < 50; ++i) {
    sched_->Wake(&mq, true);
    sim_.RunFor(200 * kUsec);
  }
  ASSERT_EQ(latency.count(), 50);
  // Bounded by max_step + wake overheads: well under 15us, far below the
  // milliseconds a CFS waiter would see.
  EXPECT_LT(latency.P99(), 15 * kUsec);
}

TEST_F(CpuSchedTest, CfsWakerBehindHogsWaitsForTickOrSlice) {
  Init(1);
  // Two hogs keep the core in fresh CFS turns (a lone hog's turn ages past
  // the slice and any waker preempts immediately — matching CFS sleeper
  // fairness — which would hide the tick-gated path this test targets).
  HogTask hog1("hog1", SchedClass::kCfs, 1.0);
  HogTask hog2("hog2", SchedClass::kCfs, 1.0);
  sched_->AddTask(&hog1);
  sched_->AddTask(&hog2);
  sched_->Wake(&hog1, false);
  sched_->Wake(&hog2, false);
  sim_.RunFor(1 * kMsec);

  BurstTask waiter("waiter", SchedClass::kCfs, 1 * kUsec, 4.0);  // nice -20
  Histogram latency;
  waiter.set_sched_latency_histogram(&latency);
  sched_->AddTask(&waiter);
  for (int i = 0; i < 40; ++i) {
    sched_->Wake(&waiter, true);
    sim_.RunFor(7 * kMsec + i * 131 * kUsec);  // decorrelate from turns
  }
  // Wakeups landing early in a hog's turn wait for the next tick: the
  // tail reaches hundreds of microseconds, bounded by ~slice.
  EXPECT_GT(latency.P99(), 100 * kUsec);
  EXPECT_LT(latency.P99(), params_.cfs_slice + params_.cfs_tick);
}

TEST_F(CpuSchedTest, MicroQuantaBandwidthIsEnforced) {
  Init(1);
  HogTask mq("mq", SchedClass::kMicroQuanta);
  sched_->AddTask(&mq);
  sched_->SetMicroQuantaBandwidth(&mq, 300 * kUsec, 1 * kMsec);
  HogTask cfs("cfs", SchedClass::kCfs);
  sched_->AddTask(&cfs);
  sched_->Wake(&mq, false);
  sched_->Wake(&cfs, false);
  sim_.RunFor(100 * kMsec);
  double mq_share = static_cast<double>(mq.cpu_consumed_ns()) / 100e6;
  double cfs_share = static_cast<double>(cfs.cpu_consumed_ns()) / 100e6;
  // MQ capped near its 30% runtime; the CFS task gets the remainder.
  EXPECT_NEAR(mq_share, 0.3, 0.05);
  EXPECT_GT(cfs_share, 0.6);
}

TEST_F(CpuSchedTest, ReservedCoreExcludesOtherTasks) {
  Init(2);
  BurstTask owner("owner", SchedClass::kDedicated, 1 * kUsec);
  sched_->AddTask(&owner);
  sched_->ReserveCore(&owner, 0);
  HogTask a("a", SchedClass::kCfs);
  HogTask b("b", SchedClass::kCfs);
  sched_->AddTask(&a);
  sched_->AddTask(&b);
  sched_->Wake(&a, false);
  sched_->Wake(&b, false);
  sim_.RunFor(20 * kMsec);
  // Both hogs squeeze onto core 1; combined they get ~1 core, not 2.
  int64_t total = a.cpu_consumed_ns() + b.cpu_consumed_ns();
  EXPECT_LT(total, 22 * kMsec);
  EXPECT_GT(total, 18 * kMsec);
}

TEST_F(CpuSchedTest, CStateExitLatencyGrowsWithIdleTime) {
  Init(1);
  BurstTask task("t", SchedClass::kCfs, 1 * kUsec);
  Histogram lat_short;
  Histogram lat_long;
  sched_->AddTask(&task);
  // Prime: run once.
  sched_->Wake(&task, true);
  sim_.RunFor(1 * kMsec);

  // Short idle (< C1E threshold): shallow wakeups.
  task.set_sched_latency_histogram(&lat_short);
  for (int i = 0; i < 10; ++i) {
    sched_->Wake(&task, true);
    sim_.RunFor(30 * kUsec);  // re-wake every 30us
  }
  // Long idle (> C6 threshold): deep wakeups.
  task.set_sched_latency_histogram(&lat_long);
  for (int i = 0; i < 10; ++i) {
    sim_.RunFor(2 * kMsec);  // let the core sink to C6
    sched_->Wake(&task, true);
    sim_.RunFor(1 * kMsec);
  }
  EXPECT_GT(lat_long.Mean(), lat_short.Mean() + ToUsec(0) +
                                 static_cast<double>(
                                     params_.c6_exit_latency) * 0.7);
}

TEST_F(CpuSchedTest, DisablingCstatesRemovesDeepWakeupPenalty) {
  params_.enable_cstates = false;
  Init(1);
  BurstTask task("t", SchedClass::kCfs, 1 * kUsec);
  Histogram latency;
  task.set_sched_latency_histogram(&latency);
  sched_->AddTask(&task);
  for (int i = 0; i < 10; ++i) {
    sim_.RunFor(2 * kMsec);
    sched_->Wake(&task, true);
    sim_.RunFor(1 * kMsec);
  }
  EXPECT_LT(latency.P99(), 5 * kUsec);
}

TEST_F(CpuSchedTest, NonPreemptibleSectionDelaysMicroQuantaWakeup) {
  Init(1);
  // Antagonist holding long non-preemptible kernel sections.
  Rng rng(3);
  KernelSectionTask::Options opt;
  opt.np_min = 400 * kUsec;
  opt.np_max = 500 * kUsec;
  opt.sleep_mean = 5 * kUsec;
  KernelSectionTask antagonist("mmap", sched_.get(), &rng, opt);
  antagonist.Start();
  sim_.RunFor(1 * kMsec);

  BurstTask mq("mq", SchedClass::kMicroQuanta, 1 * kUsec);
  Histogram latency;
  mq.set_sched_latency_histogram(&latency);
  sched_->AddTask(&mq);
  for (int i = 0; i < 30; ++i) {
    sched_->Wake(&mq, true);
    sim_.RunFor(2 * kMsec);
  }
  // Some wakeups land inside a 400-500us kernel section that even
  // MicroQuanta cannot preempt.
  EXPECT_GT(latency.max(), 100 * kUsec);
}

TEST_F(CpuSchedTest, SpinParkingAccountsCpuAndWakesInstantly) {
  Init(2);
  BurstTask spinner("spin", SchedClass::kDedicated, 2 * kUsec);
  // Dedicated spinner: park when idle, but CPU is charged as spinning.
  class SpinWrap : public SimTask {
   public:
    SpinWrap() : SimTask("spin", SchedClass::kDedicated) {}
    StepResult Step(SimTime now, SimDuration budget) override {
      StepResult r;
      if (work_ > 0) {
        r.cpu_ns = std::min<SimDuration>(work_, budget);
        work_ -= r.cpu_ns;
        ++serviced_;
        r.next = StepResult::Next::kYield;
      } else {
        r.next = StepResult::Next::kSpin;
      }
      return r;
    }
    SimDuration work_ = 0;
    int serviced_ = 0;
  };
  SpinWrap spin;
  sched_->AddTask(&spin);
  sched_->ReserveCore(&spin, 0);
  sched_->Wake(&spin, false);
  sim_.RunFor(10 * kMsec);
  // Parked and idle: still burning the whole core.
  sched_->FlushSpinAccounting();
  EXPECT_GT(spin.cpu_consumed_ns(), 9 * kMsec);

  // New work is noticed within the spin-detect latency, not a full wakeup.
  SimTime before = sim_.now();
  spin.work_ = 1 * kUsec;
  sched_->Wake(&spin, true);
  sim_.RunFor(10 * kUsec);
  EXPECT_EQ(spin.serviced_, 1);
  (void)before;
}

TEST_F(CpuSchedTest, WorkStealingBalancesQueuedTasks) {
  Init(2);
  // Three hogs woken while only core 0 is awake; the idle core must steal.
  HogTask a("a", SchedClass::kCfs);
  HogTask b("b", SchedClass::kCfs);
  sched_->AddTask(&a);
  sched_->AddTask(&b);
  sched_->Wake(&a, false);
  sched_->Wake(&b, false);
  sim_.RunFor(20 * kMsec);
  // Both should have found their own core: each ~20ms of CPU.
  EXPECT_GT(a.cpu_consumed_ns(), 18 * kMsec);
  EXPECT_GT(b.cpu_consumed_ns(), 18 * kMsec);
}

TEST_F(CpuSchedTest, ContainerAccountingAggregates) {
  Init(2);
  HogTask a("a", SchedClass::kCfs);
  HogTask b("b", SchedClass::kCfs);
  a.set_container("app");
  b.set_container("kernel");
  sched_->AddTask(&a);
  sched_->AddTask(&b);
  sched_->Wake(&a, false);
  sched_->Wake(&b, false);
  sim_.RunFor(5 * kMsec);
  EXPECT_GT(sched_->ContainerCpuNs("app"), 4 * kMsec);
  EXPECT_GT(sched_->ContainerCpuNs("kernel"), 4 * kMsec);
  EXPECT_EQ(sched_->ContainerCpuNs("nonexistent"), 0);
  EXPECT_GE(sched_->TotalCpuNs(),
            sched_->ContainerCpuNs("app") +
                sched_->ContainerCpuNs("kernel"));
}

}  // namespace
}  // namespace snap
