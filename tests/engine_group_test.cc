// Engine-group scheduler tests: the three scheduling modes of Section 2.4
// exercised with synthetic engines — dedicated spinning, spreading's
// block/wake behavior, compacting's scale-out and compaction, mailbox
// execution on the engine thread, and fair sharing.
#include <gtest/gtest.h>

#include <memory>

#include "src/sim/cpu.h"
#include "src/snap/engine_group.h"

namespace snap {
namespace {

// Synthetic engine: work arrives via AddWork(); Poll consumes it at a
// fixed per-item cost.
class FakeEngine : public Engine {
 public:
  FakeEngine(std::string name, SimDuration per_item = 500 * kNsec)
      : Engine(std::move(name)), per_item_(per_item) {}

  void AddWork(SimTime now, int items) {
    for (int i = 0; i < items; ++i) {
      arrivals_.push_back(now);
    }
    NotifyWork();
  }

  PollResult Poll(SimTime now, SimDuration budget_ns) override {
    PollResult result;
    result.cpu_ns += RunMailbox() > 0 ? 250 : 0;
    while (!arrivals_.empty() && result.cpu_ns < budget_ns) {
      service_latency_.Record(now - arrivals_.front());
      arrivals_.pop_front();
      result.cpu_ns += per_item_;
      ++result.work_items;
      ++serviced_;
    }
    return result;
  }

  bool HasWork(SimTime now) const override { return !arrivals_.empty(); }

  SimDuration QueueingDelay(SimTime now) const override {
    return arrivals_.empty() ? 0 : now - arrivals_.front();
  }

  int serviced() const { return serviced_; }
  const Histogram& service_latency() const { return service_latency_; }

 private:
  SimDuration per_item_;
  std::deque<SimTime> arrivals_;
  int serviced_ = 0;
  Histogram service_latency_;
};

class EngineGroupTest : public ::testing::Test {
 protected:
  void Init(int cores) {
    params_.num_cores = cores;
    sched_ = std::make_unique<CpuScheduler>(&sim_, params_);
  }

  Simulator sim_;
  CpuParams params_;
  std::unique_ptr<CpuScheduler> sched_;
};

TEST_F(EngineGroupTest, DedicatedServicesWorkPromptly) {
  Init(2);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kDedicatedCores;
  options.dedicated_cores = {0};
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine engine("e");
  group->AddEngine(&engine);
  sim_.RunFor(1 * kMsec);
  for (int i = 0; i < 50; ++i) {
    engine.AddWork(sim_.now(), 1);
    sim_.RunFor(100 * kUsec);
  }
  EXPECT_EQ(engine.serviced(), 50);
  // Spin-polling: work picked up within poll-detection latency (sub-us).
  EXPECT_LT(engine.service_latency().P99(), 3 * kUsec);
  // The dedicated core burns CPU the whole time.
  EXPECT_GT(group->CpuNs(), 5 * kMsec);
}

TEST_F(EngineGroupTest, DedicatedSharesCoreAcrossEngines) {
  Init(2);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kDedicatedCores;
  options.dedicated_cores = {0};
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine a("a");
  FakeEngine b("b");
  group->AddEngine(&a);
  group->AddEngine(&b);
  for (int i = 0; i < 100; ++i) {
    a.AddWork(sim_.now(), 5);
    b.AddWork(sim_.now(), 5);
    sim_.RunFor(50 * kUsec);
  }
  // Round-robin polling services both.
  EXPECT_EQ(a.serviced(), 500);
  EXPECT_EQ(b.serviced(), 500);
}

TEST_F(EngineGroupTest, SpreadingBlocksWhenIdleAndWakesOnWork) {
  params_.enable_cstates = false;  // isolate scheduling from C-state exits
  Init(4);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kSpreadingEngines;
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine engine("e");
  group->AddEngine(&engine);
  sim_.RunFor(5 * kMsec);
  int64_t idle_cpu = group->CpuNs();
  // Blocked while idle: near-zero CPU (no spinning).
  EXPECT_LT(idle_cpu, 100 * kUsec);

  for (int i = 0; i < 20; ++i) {
    engine.AddWork(sim_.now(), 2);
    sim_.RunFor(200 * kUsec);
  }
  EXPECT_EQ(engine.serviced(), 40);
  // Interrupt-driven wakeup: IPI + IRQ entry (~1us), not spinning-fast
  // nanoseconds; bounded well below C-state territory.
  EXPECT_GE(engine.service_latency().P99(), 800);
  EXPECT_LT(engine.service_latency().P99(), 40 * kUsec);
}

TEST_F(EngineGroupTest, SpreadingScalesAcrossCores) {
  Init(4);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kSpreadingEngines;
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine a("a", 2 * kUsec);
  FakeEngine b("b", 2 * kUsec);
  FakeEngine c("c", 2 * kUsec);
  group->AddEngine(&a);
  group->AddEngine(&b);
  group->AddEngine(&c);
  // Saturating load on all three engines simultaneously.
  for (int i = 0; i < 200; ++i) {
    a.AddWork(sim_.now(), 3);
    b.AddWork(sim_.now(), 3);
    c.AddWork(sim_.now(), 3);
    sim_.RunFor(20 * kUsec);
  }
  sim_.RunFor(2 * kMsec);
  // Each engine got its own thread; all finish their 600 items. With one
  // shared core this would need 3.6ms of serialized work per engine set.
  EXPECT_EQ(a.serviced() + b.serviced() + c.serviced(), 1800);
}

TEST_F(EngineGroupTest, CompactingStartsOnPrimaryAndScalesOut) {
  Init(6);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kCompactingEngines;
  options.compacting_slo = 30 * kUsec;
  options.max_workers = 4;
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine a("a", 4 * kUsec);
  FakeEngine b("b", 4 * kUsec);
  group->AddEngine(&a);
  group->AddEngine(&b);
  // Light load: everything stays compacted.
  for (int i = 0; i < 20; ++i) {
    a.AddWork(sim_.now(), 1);
    b.AddWork(sim_.now(), 1);
    sim_.RunFor(200 * kUsec);
  }
  EXPECT_EQ(a.serviced(), 20);
  EXPECT_EQ(b.serviced(), 20);

  // Overload both engines: queueing delay exceeds the SLO; the rebalancer
  // must scale an engine out to another worker.
  for (int i = 0; i < 300; ++i) {
    a.AddWork(sim_.now(), 4);
    b.AddWork(sim_.now(), 4);
    sim_.RunFor(20 * kUsec);
  }
  sim_.RunFor(10 * kMsec);
  EXPECT_EQ(a.serviced(), 20 + 1200);
  EXPECT_EQ(b.serviced(), 20 + 1200);
}

TEST_F(EngineGroupTest, CompactingPrimarySpinsForLowLatencyWhenIdle) {
  Init(4);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kCompactingEngines;
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine engine("e");
  group->AddEngine(&engine);
  // Long idle, then sparse single items: the spinning primary picks each
  // up without paying interrupt/C-state wakeup costs (Figure 7(a)).
  sim_.RunFor(5 * kMsec);
  for (int i = 0; i < 20; ++i) {
    engine.AddWork(sim_.now(), 1);
    sim_.RunFor(1 * kMsec);  // 1ms gaps: deep C-states for blocked designs
  }
  EXPECT_EQ(engine.serviced(), 20);
  EXPECT_LT(engine.service_latency().P99(), 3 * kUsec);
}

// Compacting migration is part of the modeled world, so it must be
// bit-deterministic: two runs of the same seeded overload produce the
// same serviced counts, the same CPU burn, and the same latency tail.
// And migration must actually help — once scaled out, a later wave of
// the same load is serviced with a tail bounded near the SLO, not the
// overload backlog's.
TEST_F(EngineGroupTest, CompactingMigrationDeterministicUnderSlo) {
  constexpr SimDuration kSlo = 30 * kUsec;
  struct RunOutcome {
    int serviced_a = 0;
    int serviced_b = 0;
    int64_t cpu_ns = 0;
    int64_t overload_p99 = 0;
    int64_t steady_p99 = 0;
  };
  auto run_once = [&]() {
    Simulator sim(7);
    CpuParams params;
    params.num_cores = 6;
    CpuScheduler sched(&sim, params);
    EngineGroup::Options options;
    options.mode = SchedulingMode::kCompactingEngines;
    options.compacting_slo = kSlo;
    options.max_workers = 4;
    auto group = EngineGroup::Create("g", &sim, &sched, options);
    FakeEngine a("a", 4 * kUsec);
    FakeEngine b("b", 4 * kUsec);
    group->AddEngine(&a);
    group->AddEngine(&b);
    // Overload both engines past the SLO to force scale-out.
    for (int i = 0; i < 300; ++i) {
      a.AddWork(sim.now(), 4);
      b.AddWork(sim.now(), 4);
      sim.RunFor(20 * kUsec);
    }
    sim.RunFor(10 * kMsec);
    RunOutcome outcome;
    outcome.overload_p99 = a.service_latency().P99();
    // Steady wave at the same offered rate on the scaled-out layout: the
    // backlog is gone, so the tail reflects placement, not the queue.
    FakeEngine steady("steady", 4 * kUsec);
    group->AddEngine(&steady);
    for (int i = 0; i < 200; ++i) {
      steady.AddWork(sim.now(), 1);
      a.AddWork(sim.now(), 1);
      sim.RunFor(20 * kUsec);
    }
    sim.RunFor(10 * kMsec);
    outcome.serviced_a = a.serviced();
    outcome.serviced_b = b.serviced();
    outcome.cpu_ns = group->CpuNs();
    outcome.steady_p99 = steady.service_latency().P99();
    EXPECT_EQ(steady.serviced(), 200);
    return outcome;
  };

  RunOutcome first = run_once();
  RunOutcome second = run_once();
  EXPECT_EQ(first.serviced_a, second.serviced_a);
  EXPECT_EQ(first.serviced_b, second.serviced_b);
  EXPECT_EQ(first.cpu_ns, second.cpu_ns);
  EXPECT_EQ(first.overload_p99, second.overload_p99);
  EXPECT_EQ(first.steady_p99, second.steady_p99);
  EXPECT_EQ(first.serviced_a, 1200 + 200);
  EXPECT_EQ(first.serviced_b, 1200);
  // The overload tail blew the SLO (that is what triggered scale-out);
  // the steady tail on the migrated layout sits within a small multiple
  // of it.
  EXPECT_GT(first.overload_p99, kSlo);
  EXPECT_LT(first.steady_p99, 4 * kSlo);
}

TEST_F(EngineGroupTest, MailboxWorkRunsOnEngineThread) {
  Init(2);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kDedicatedCores;
  options.dedicated_cores = {0};
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine engine("e");
  group->AddEngine(&engine);
  sim_.RunFor(1 * kMsec);
  bool ran = false;
  ASSERT_TRUE(engine.mailbox()->Post([&ran] { ran = true; }));
  engine.NotifyWork();
  sim_.RunFor(1 * kMsec);
  EXPECT_TRUE(ran);
}

TEST_F(EngineGroupTest, RemoveEngineStopsPolling) {
  Init(2);
  EngineGroup::Options options;
  options.mode = SchedulingMode::kDedicatedCores;
  options.dedicated_cores = {0};
  auto group = EngineGroup::Create("g", &sim_, sched_.get(), options);
  FakeEngine engine("e");
  group->AddEngine(&engine);
  sim_.RunFor(1 * kMsec);
  group->RemoveEngine(&engine);
  engine.AddWork(sim_.now(), 5);
  sim_.RunFor(5 * kMsec);
  EXPECT_EQ(engine.serviced(), 0);
}

// Parameterized: every mode must deliver all work under mixed load.
class AllModesTest : public ::testing::TestWithParam<SchedulingMode> {};

TEST_P(AllModesTest, DeliversAllWorkUnderburstyLoad) {
  Simulator sim(21);
  CpuParams params;
  params.num_cores = 6;
  CpuScheduler sched(&sim, params);
  EngineGroup::Options options;
  options.mode = GetParam();
  options.dedicated_cores = {0, 1};
  auto group = EngineGroup::Create("g", &sim, &sched, options);
  std::vector<std::unique_ptr<FakeEngine>> engines;
  for (int i = 0; i < 4; ++i) {
    engines.push_back(
        std::make_unique<FakeEngine>("e" + std::to_string(i)));
    group->AddEngine(engines.back().get());
  }
  Rng rng(5);
  int total = 0;
  for (int round = 0; round < 200; ++round) {
    for (auto& e : engines) {
      int items = static_cast<int>(rng.NextBounded(4));
      e->AddWork(sim.now(), items);
      total += items;
    }
    sim.RunFor(rng.NextInt(10, 100) * kUsec);
  }
  sim.RunFor(20 * kMsec);
  int serviced = 0;
  for (auto& e : engines) {
    serviced += e->serviced();
  }
  EXPECT_EQ(serviced, total);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, AllModesTest,
    ::testing::Values(SchedulingMode::kDedicatedCores,
                      SchedulingMode::kSpreadingEngines,
                      SchedulingMode::kCompactingEngines));

}  // namespace
}  // namespace snap
