// Telemetry registry tests: type-collision CHECKs, fixed-memory series
// sampling, Prometheus text exposition, and snapshot determinism.
#include <gtest/gtest.h>

#include "src/stats/telemetry.h"

namespace snap {
namespace {

TEST(TelemetryTest, CounterAndHistogramPointersAreStable) {
  Telemetry t;
  Counter* c = t.GetCounter("a/b");
  c->Add(3);
  EXPECT_EQ(t.GetCounter("a/b"), c);
  EXPECT_EQ(t.GetCounter("a/b")->value(), 3);
  Histogram* h = t.GetHistogram("a/h");
  EXPECT_EQ(t.GetHistogram("a/h"), h);
}

TEST(TelemetryTest, NameRegisteredTwiceWithDifferentTypeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Telemetry t;
  t.GetCounter("x/metric");
  EXPECT_DEATH(t.GetHistogram("x/metric"),
               "registered twice with different types");
  EXPECT_DEATH(t.RegisterGauge("x/metric", [] { return int64_t{0}; }),
               "registered twice with different types");
  EXPECT_DEATH(t.GetSeries("x/metric", 1 * kMsec),
               "registered twice with different types");
  t.GetHistogram("x/hist");
  EXPECT_DEATH(t.GetCounter("x/hist"),
               "registered twice with different types");
  t.RegisterGauge("x/gauge", [] { return int64_t{7}; });
  EXPECT_DEATH(t.GetCounter("x/gauge"),
               "registered twice with different types");
}

TEST(TelemetryTest, SameTypeReRegistrationIsFine) {
  Telemetry t;
  t.GetCounter("c");
  t.GetCounter("c")->Increment();
  t.RegisterGauge("g", [] { return int64_t{1}; });
  t.RegisterGauge("g", [] { return int64_t{2}; });  // replace is allowed
  EXPECT_EQ(t.SnapshotValues()["g"], 2);
}

TEST(TelemetryTest, MaybeSampleSeriesSelfPacesOffTheGivenClock) {
  // Live executors cannot be driven by sim-scheduled sampling events; they
  // call MaybeSampleSeries(now) every loop pass and the registry paces
  // itself to one sample per bucket width.
  Telemetry t;
  Counter* c = t.GetCounter("events");
  EXPECT_FALSE(t.MaybeSampleSeries(1 * kMsec));  // sampling not enabled
  t.EnableSeriesSampling(1 * kMsec, 8);

  c->Add(10);
  EXPECT_TRUE(t.MaybeSampleSeries(1 * kMsec));   // first call samples
  EXPECT_FALSE(t.MaybeSampleSeries(1 * kMsec));  // same instant: paced out
  c->Add(5);
  EXPECT_FALSE(t.MaybeSampleSeries(1 * kMsec + 1));  // within the bucket
  EXPECT_TRUE(t.MaybeSampleSeries(2 * kMsec));       // next bucket due
  EXPECT_FALSE(t.MaybeSampleSeries(2 * kMsec));

  const TimeSeries* events = t.FindSeries("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->total_count(), 2);
  EXPECT_EQ(events->total_sum(), 15);  // deltas: 10 then 5
}

TEST(TelemetryTest, SampledSeriesRecordCounterDeltasAndGaugeValues) {
  Telemetry t;
  Counter* c = t.GetCounter("events");
  int64_t depth = 5;
  t.RegisterGauge("depth", [&] { return depth; });
  t.EnableSeriesSampling(1 * kMsec, 8);
  ASSERT_TRUE(t.series_sampling_enabled());

  c->Add(100);
  t.SampleSeriesAt(1 * kMsec);
  c->Add(40);
  depth = 9;
  t.SampleSeriesAt(2 * kMsec);

  const TimeSeries* events = t.FindSeries("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->total_sum(), 140);  // deltas: 100 then 40
  EXPECT_EQ(events->total_count(), 2);
  const TimeSeries* d = t.FindSeries("depth");
  ASSERT_NE(d, nullptr);
  // Gauge samples are instantaneous values, not deltas. The series origin
  // aligns to the first sample (1ms), so the samples land in buckets 0, 1.
  EXPECT_EQ(d->bucket(0).last, 5);
  EXPECT_EQ(d->bucket(1).last, 9);
}

TEST(TelemetryTest, DirectlyFedSeriesAppearInSnapshotJson) {
  Telemetry t;
  TimeSeries* s = t.GetSeries("rate", 1 * kMsec, 8);
  s->Record(500 * kUsec, 42);
  EXPECT_EQ(t.GetSeries("rate", 99 * kMsec), s);  // width ignored on reuse
  std::string json = t.SnapshotJson();
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"rate\""), std::string::npos);
  EXPECT_EQ(t.num_series(), 1u);
}

TEST(TelemetryTest, PrometheusTextIsOrderedAndSanitized) {
  Telemetry t;
  t.GetCounter("snap/engine0/polls")->Add(7);
  t.RegisterGauge("queue/depth", [] { return int64_t{3}; });
  t.GetHistogram("rpc/latency_ns")->Record(1000);
  std::string text = t.PrometheusText();
  EXPECT_NE(text.find("# TYPE snap_engine0_polls counter"),
            std::string::npos);
  EXPECT_NE(text.find("snap_engine0_polls 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("rpc_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // No raw slashes survive sanitization in metric names.
  EXPECT_EQ(text.find("snap/engine0"), std::string::npos);
}

TEST(TelemetryTest, SnapshotJsonIsByteStableAcrossIdenticalFeeds) {
  auto feed = [](Telemetry* t) {
    t->GetCounter("b")->Add(2);
    t->GetCounter("a")->Add(1);
    t->GetHistogram("h")->Record(10);
    t->EnableSeriesSampling(1 * kMsec, 8);
    t->SampleSeriesAt(1 * kMsec);
  };
  Telemetry t1;
  Telemetry t2;
  feed(&t1);
  feed(&t2);
  EXPECT_EQ(t1.SnapshotJson(), t2.SnapshotJson());
  EXPECT_EQ(t1.PrometheusText(), t2.PrometheusText());
}

TEST(TelemetryTest, MergeFromSumsCountersAndSnapshotsGauges) {
  Telemetry a;
  Telemetry b;
  a.GetCounter("shared")->Add(1);
  b.GetCounter("shared")->Add(2);
  b.RegisterGauge("depth", [] { return int64_t{5}; });
  a.MergeFrom(b);
  auto values = a.SnapshotValues();
  EXPECT_EQ(values["shared"], 3);
  EXPECT_EQ(values["depth"], 5);  // snapshotted, not re-registered
}

}  // namespace
}  // namespace snap
