#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"

namespace snap {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(EventQueueTest, FifoForEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CallbackSeesItsOwnScheduledTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.Schedule(500, [&] { observed = sim.now(); });
  sim.RunAll();
  EXPECT_EQ(observed, 500);
}

TEST(EventQueueTest, NestedSchedulingUsesCurrentTime) {
  // An event scheduling a relative delay must be relative to ITS time,
  // not the time RunUntil started (regression test for the clock-advance
  // ordering bug).
  Simulator sim;
  SimTime second_fire = -1;
  sim.Schedule(100, [&] {
    sim.Schedule(50, [&] { second_fire = sim.now(); });
  });
  sim.Schedule(1000, [] {});
  sim.RunAll();
  EXPECT_EQ(second_fire, 150);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle handle = sim.Schedule(100, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int runs = 0;
  EventHandle handle = sim.Schedule(10, [&] { ++runs; });
  sim.RunAll();
  EXPECT_EQ(runs, 1);
  handle.Cancel();  // after fire: no-op
  handle.Cancel();
  EXPECT_EQ(runs, 1);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(200, [&] { ++fired; });
  sim.Schedule(201, [&] { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
  sim.RunUntil(300);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimulatorTest, RunForAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunFor(12345);
  EXPECT_EQ(sim.now(), 12345);
}

TEST(SimulatorTest, PeriodicSelfRescheduling) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) {
      sim.Schedule(1000, tick);
    }
  };
  sim.Schedule(1000, tick);
  sim.RunUntil(100000);
  EXPECT_EQ(ticks, 10);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim(99);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 100; ++i) {
      SimDuration d = static_cast<SimDuration>(sim.rng().NextBounded(1000));
      sim.Schedule(d, [&trace, &sim] { trace.push_back(
          static_cast<uint64_t>(sim.now())); });
    }
    sim.RunAll();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Both event-queue implementations (timer wheel and legacy heap) must be
// observably identical; everything below runs against each.
// ---------------------------------------------------------------------------

class EventQueueImplTest : public ::testing::TestWithParam<EventQueueKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, EventQueueImplTest,
                         ::testing::Values(EventQueueKind::kTimerWheel,
                                           EventQueueKind::kLegacyHeap),
                         [](const auto& info) {
                           return std::string(EventQueueKindName(info.param));
                         });

TEST_P(EventQueueImplTest, HeavyChurnCancelAndMove) {
  // Regression for the old PopNext const_cast-on-priority_queue UB and for
  // slab/generation bookkeeping: schedule, cancel, and "move" (cancel +
  // reschedule) thousands of events with a seeded RNG, checking that
  // exactly the surviving events fire, in time order.
  Simulator sim(1234, GetParam());
  Rng rng(42);
  std::vector<EventHandle> handles;
  std::vector<SimTime> expected;  // times of events that must fire
  std::vector<SimTime> fired;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) {
      SimTime when = sim.now() + 1 +
                     static_cast<SimDuration>(rng.NextBounded(500 * 1000));
      handles.push_back(
          sim.ScheduleAt(when, [&fired, &sim] { fired.push_back(sim.now()); }));
      expected.push_back(when);
    }
    // Cancel a third, move (cancel + reschedule) another third.
    for (size_t i = handles.size() - 100; i < handles.size(); ++i) {
      uint64_t coin = rng.NextBounded(3);
      if (coin == 0) {
        handles[i].Cancel();
        handles[i].Cancel();  // idempotent
        expected[i] = -1;
      } else if (coin == 1) {
        handles[i].Cancel();
        SimTime when = sim.now() + 1 +
                       static_cast<SimDuration>(rng.NextBounded(500 * 1000));
        handles[i] = sim.ScheduleAt(
            when, [&fired, &sim] { fired.push_back(sim.now()); });
        expected[i] = when;
      }
    }
    sim.RunFor(10 * kUsec);  // interleave execution with churn
  }
  sim.RunAll();

  std::vector<SimTime> want;
  for (SimTime t : expected) {
    if (t >= 0) {
      want.push_back(t);
    }
  }
  std::sort(want.begin(), want.end());
  ASSERT_EQ(fired.size(), want.size());
  std::vector<SimTime> got = fired;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
  // Events must have fired in nondecreasing time order as executed.
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST_P(EventQueueImplTest, StaleHandleAfterSlotReuseIsInert) {
  // After an event fires, its slab slot may be reused by a new event; the
  // old handle must neither cancel nor report the new occupant as pending.
  Simulator sim(1, GetParam());
  bool first_ran = false;
  EventHandle stale = sim.Schedule(10, [&] { first_ran = true; });
  sim.RunFor(100);
  ASSERT_TRUE(first_ran);
  EXPECT_FALSE(stale.pending());

  // The wheel reuses the freed slot for the next record.
  bool second_ran = false;
  sim.Schedule(10, [&] { second_ran = true; });
  stale.Cancel();  // must not touch the new event
  sim.RunAll();
  EXPECT_TRUE(second_ran);
}

TEST_P(EventQueueImplTest, CancelledHeadDoesNotStallNextEventTime) {
  // RunUntil(t) must not execute an event scheduled after t just because a
  // cancelled event tops the queue (regression: the old heap reported the
  // cancelled event's time from NextEventTime).
  Simulator sim(1, GetParam());
  bool late_ran = false;
  EventHandle early = sim.Schedule(100, [] {});
  sim.Schedule(1000, [&] { late_ran = true; });
  early.Cancel();
  sim.RunUntil(500);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.now(), 500);
  sim.RunAll();
  EXPECT_TRUE(late_ran);
}

TEST_P(EventQueueImplTest, FarWheelAndOverflowHorizons) {
  // Cover every filing tier: same 16us block (near), within ~4.2ms (far),
  // and beyond (overflow heap), plus re-scheduling into the past-most tier
  // as the clock advances across block boundaries.
  Simulator sim(1, GetParam());
  std::vector<int> order;
  sim.Schedule(3 * kUsec, [&] { order.push_back(0); });        // near
  sim.Schedule(1 * kMsec, [&] { order.push_back(1); });        // far
  sim.Schedule(100 * kMsec, [&] { order.push_back(2); });      // overflow
  sim.Schedule(2 * kSec, [&] { order.push_back(3); });         // deep overflow
  // Cascade stress: as each fires, schedule short follow-ups that land in
  // the (rebased) near wheel.
  sim.Schedule(1 * kMsec + 1, [&] { order.push_back(4); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 2, 3}));
  EXPECT_EQ(sim.now(), 2 * kSec);
}

TEST_P(EventQueueImplTest, EqualTimeFifoAcrossBlockBoundary) {
  // Events scheduled at the exact same instant from different "eras" of
  // the wheel (before and after block advances) must still fire FIFO.
  Simulator sim(1, GetParam());
  std::vector<int> order;
  const SimTime t = 10 * kMsec;  // lives in far wheel when first scheduled
  sim.Schedule(t, [&] { order.push_back(0); });
  sim.Schedule(5 * kMsec, [&] {
    sim.ScheduleAt(t, [&] { order.push_back(1); });  // scheduled later: after
  });
  sim.Schedule(t, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_P(EventQueueImplTest, MoveOnlyCaptureIsSupported) {
  // EventCallback (unlike std::function) must hold move-only captures.
  Simulator sim(1, GetParam());
  auto payload = std::make_unique<int>(41);
  int result = 0;
  sim.Schedule(5, [&result, p = std::move(payload)] { result = *p + 1; });
  sim.RunAll();
  EXPECT_EQ(result, 42);
}

TEST(EventQueueParityTest, IdenticalFireOrderAcrossImplementations) {
  // The same randomized schedule/cancel workload must produce the exact
  // same (time, tag) execution sequence on both implementations.
  auto run = [](EventQueueKind kind) {
    Simulator sim(7, kind);
    Rng rng(7);
    std::vector<std::pair<SimTime, int>> trace;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 2000; ++i) {
      SimTime when = static_cast<SimDuration>(rng.NextBounded(20 * kMsec));
      handles.push_back(sim.ScheduleAt(
          when, [&trace, &sim, i] { trace.emplace_back(sim.now(), i); }));
    }
    for (int i = 0; i < 2000; i += 5) {
      handles[i].Cancel();
    }
    sim.RunAll();
    return trace;
  };
  EXPECT_EQ(run(EventQueueKind::kTimerWheel),
            run(EventQueueKind::kLegacyHeap));
}

TEST(EventQueueStatsTest, WheelCountersTrackTiersAndCancels) {
  Simulator sim(1, EventQueueKind::kTimerWheel);
  sim.Schedule(1 * kUsec, [] {});            // near
  sim.Schedule(1 * kMsec, [] {});            // far
  sim.Schedule(1 * kSec, [] {});             // overflow
  EventHandle h = sim.Schedule(2 * kUsec, [] {});
  h.Cancel();
  sim.RunAll();
  const EventQueueStats& s = sim.event_queue().stats();
  EXPECT_EQ(s.scheduled, 4);
  EXPECT_EQ(s.fired, 3);
  EXPECT_EQ(s.cancelled, 1);
  EXPECT_GE(s.near_inserts, 2);
  EXPECT_GE(s.far_inserts, 1);
  EXPECT_GE(s.overflow_inserts, 1);
  EXPECT_GE(s.block_jumps, 2);
  EXPECT_EQ(s.callback_heap_allocs, 0);  // all captures fit inline
}

}  // namespace
}  // namespace snap
