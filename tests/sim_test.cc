#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"

namespace snap {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(EventQueueTest, FifoForEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, CallbackSeesItsOwnScheduledTime) {
  Simulator sim;
  SimTime observed = -1;
  sim.Schedule(500, [&] { observed = sim.now(); });
  sim.RunAll();
  EXPECT_EQ(observed, 500);
}

TEST(EventQueueTest, NestedSchedulingUsesCurrentTime) {
  // An event scheduling a relative delay must be relative to ITS time,
  // not the time RunUntil started (regression test for the clock-advance
  // ordering bug).
  Simulator sim;
  SimTime second_fire = -1;
  sim.Schedule(100, [&] {
    sim.Schedule(50, [&] { second_fire = sim.now(); });
  });
  sim.Schedule(1000, [] {});
  sim.RunAll();
  EXPECT_EQ(second_fire, 150);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventHandle handle = sim.Schedule(100, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  int runs = 0;
  EventHandle handle = sim.Schedule(10, [&] { ++runs; });
  sim.RunAll();
  EXPECT_EQ(runs, 1);
  handle.Cancel();  // after fire: no-op
  handle.Cancel();
  EXPECT_EQ(runs, 1);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(200, [&] { ++fired; });
  sim.Schedule(201, [&] { ++fired; });
  sim.RunUntil(200);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 200);
  sim.RunUntil(300);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimulatorTest, RunForAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunFor(12345);
  EXPECT_EQ(sim.now(), 12345);
}

TEST(SimulatorTest, PeriodicSelfRescheduling) {
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 10) {
      sim.Schedule(1000, tick);
    }
  };
  sim.Schedule(1000, tick);
  sim.RunUntil(100000);
  EXPECT_EQ(ticks, 10);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim(99);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 100; ++i) {
      SimDuration d = static_cast<SimDuration>(sim.rng().NextBounded(1000));
      sim.Schedule(d, [&trace, &sim] { trace.push_back(
          static_cast<uint64_t>(sim.now())); });
    }
    sim.RunAll();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace snap
