// Parallel sharded simulation:
//  - conservative epoch safety: no arrival event ever executes before a
//    lagging shard's horizon, and delivery times are exactly the serial
//    model's (wire + propagation + serialization + NIC pipeline) even
//    when the destination shard is otherwise idle (skip-ahead epochs);
//  - cross-shard packet conservation, audited by the InvariantChecker
//    over a full chaos workload split across shards;
//  - shard-count-invariant results: final telemetry snapshots, delivered
//    counts and trace digests do not depend on how hosts are placed;
//  - threaded execution is bit-identical to sequential shard execution
//    (the property that makes the TSan matrix meaningful: same results,
//    real data races surface as tool errors, not flaky outputs).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "bench/sharded_rack.h"
#include "src/net/shard_net.h"
#include "src/packet/packet.h"
#include "src/packet/packet_pool.h"
#include "src/sim/placement.h"
#include "src/sim/sharded_sim.h"
#include "src/testing/seed_sweep.h"

namespace snap {
namespace {

// Serial-model delivery time for one packet through an uncongested port.
SimTime ExpectedDelivery(const NicParams& p, SimTime wire_time,
                         int64_t wire_bytes) {
  return wire_time + p.propagation_delay +
         SerializationDelay(wire_bytes, p.link_gbps) + p.nic_pipeline_delay;
}

TEST(ShardedSimTest, EpochHorizonSafetyAndExactDeliveryTimes) {
  ShardedSim::Options options;
  options.num_shards = 2;
  options.lookahead = NicParams{}.propagation_delay;
  ShardedSim sharded(options);
  ShardedFabricGroup group(&sharded, NicParams{});
  Nic* nic0 = group.fabric(0)->AddHost();
  group.fabric(1)->AddHost();
  ASSERT_EQ(group.shard_of_host(0), 0);
  ASSERT_EQ(group.shard_of_host(1), 1);

  // Host 1's NIC only exists on shard 1; shard 0 sees a placeholder.
  EXPECT_TRUE(group.fabric(1)->host_is_local(1));
  EXPECT_FALSE(group.fabric(0)->host_is_local(1));
  EXPECT_EQ(group.fabric(0)->num_hosts(), 2);
  EXPECT_EQ(group.fabric(1)->num_hosts(), 2);

  // Packets leave host 0's wire at sparse times (the destination shard is
  // idle in between, so epochs skip ahead); each must arrive exactly when
  // the serial fabric model says, and never before the sender's horizon.
  const NicParams params{};
  std::vector<SimTime> wire_times = {1000, 5000, 400000, 7000000};
  const int64_t kWireBytes = 1500;
  struct Arrival {
    SimTime rx_time;
    SimTime shard_now;
  };
  std::vector<Arrival> arrivals;
  group.fabric(1)->nic(1)->SetRxTap([&](const Packet& p) {
    arrivals.push_back({p.rx_time, group.fabric(1)->sim()->now()});
  });
  // Per-shard packet pool, as sharded workloads are expected to use: the
  // debug owner-thread assertion rides along in this test.
  PacketPool pool(64, "shard0");
  for (SimTime t : wire_times) {
    sharded.sim(0)->ScheduleAt(t, [&, t] {
      PacketPtr p = pool.Allocate();
      ASSERT_NE(p, nullptr);
      p->src_host = 0;
      p->dst_host = 1;
      p->wire_bytes = static_cast<int32_t>(kWireBytes);
      group.fabric(0)->Route(std::move(p), t);
    });
  }

  sharded.RunFor(10 * kMsec);

  ASSERT_EQ(arrivals.size(), wire_times.size());
  for (size_t i = 0; i < wire_times.size(); ++i) {
    SimTime expected = ExpectedDelivery(params, wire_times[i], kWireBytes);
    EXPECT_EQ(arrivals[i].rx_time, expected)
        << "packet " << i << " arrived at the wrong simulated time";
    // The arrival executed at its own timestamp (the event was scheduled
    // at a barrier before the destination shard reached it — conservative
    // sync never schedules into a shard's past).
    EXPECT_EQ(arrivals[i].shard_now, expected);
    // And the arrival is beyond the source's wire time by at least the
    // lookahead: the epoch horizon proof in ShardedSim::RunUntil.
    EXPECT_GE(arrivals[i].rx_time, wire_times[i] + options.lookahead);
  }
  EXPECT_EQ(group.exchange_stats().handoffs,
            static_cast<int64_t>(wire_times.size()));
  EXPECT_EQ(group.exchange_stats().cross_shard,
            static_cast<int64_t>(wire_times.size()));
  EXPECT_EQ(group.AggregateStats().delivered,
            static_cast<int64_t>(wire_times.size()));
  // Idle skip-ahead kept the epoch count near the number of distinct
  // event times, not sim_time / lookahead (~10000 epochs if it stepped
  // blindly).
  EXPECT_LT(sharded.progress().epochs, 100);
  (void)nic0;
}

TEST(ShardedSimTest, EagerLocalDeliveryBypassesBarriers) {
  // Both hosts on shard 0 of a 2-shard sim: every packet is same-shard,
  // delivered through the eager path (port sequencer), never a ring.
  ShardedSim::Options options;
  options.num_shards = 2;
  options.lookahead = NicParams{}.propagation_delay;
  ShardedSim sharded(options);
  ShardedFabricGroup group(&sharded, NicParams{});
  group.fabric(0)->AddHost();
  group.fabric(0)->AddHost();
  ASSERT_EQ(group.shard_of_host(0), 0);
  ASSERT_EQ(group.shard_of_host(1), 0);

  const NicParams params{};
  std::vector<SimTime> wire_times = {1000, 5000, 400000, 7000000};
  const int64_t kWireBytes = 1500;
  std::vector<SimTime> arrivals;
  group.fabric(0)->nic(1)->SetRxTap(
      [&](const Packet& p) { arrivals.push_back(p.rx_time); });
  PacketPool pool(64, "shard0");
  for (SimTime t : wire_times) {
    sharded.sim(0)->ScheduleAt(t, [&, t] {
      PacketPtr p = pool.Allocate();
      ASSERT_NE(p, nullptr);
      p->src_host = 0;
      p->dst_host = 1;
      p->wire_bytes = static_cast<int32_t>(kWireBytes);
      group.fabric(0)->Route(std::move(p), t);
    });
  }
  sharded.RunFor(10 * kMsec);

  ASSERT_EQ(arrivals.size(), wire_times.size());
  for (size_t i = 0; i < wire_times.size(); ++i) {
    // Exact serial delivery times: the eager path changes no timestamps.
    EXPECT_EQ(arrivals[i], ExpectedDelivery(params, wire_times[i],
                                            kWireBytes));
  }
  const ShardedFabricGroup::ExchangeStats xs = group.exchange_stats();
  EXPECT_EQ(xs.local_direct, static_cast<int64_t>(wire_times.size()));
  EXPECT_EQ(xs.cross_shard, 0);
  // No barrier ever moved a packet.
  EXPECT_EQ(xs.exchanges, 0);
}

TEST(ShardedSimTest, ClusteredLookaheadLengthensEpochs) {
  // Two hosts pinging each other across shards, once with flat topology
  // (lookahead = propagation_delay) and once with each host in its own
  // cluster and a large inter-cluster extra delay. The per-pair lookahead
  // matrix must exploit the extra distance: materially fewer epochs for
  // the same traffic pattern.
  auto run = [](NicParams params) {
    ShardedSim::Options options;
    options.num_shards = 2;
    options.lookahead = params.propagation_delay;
    ShardedSim sharded(options);
    ShardedFabricGroup group(&sharded, params);
    group.fabric(0)->AddHost();
    group.fabric(1)->AddHost();
    int64_t delivered = 0;
    group.fabric(1)->nic(1)->SetRxTap([&](const Packet&) { ++delivered; });
    PacketPool pool(2048, "src");
    // One departure per microsecond for a millisecond.
    for (int i = 0; i < 1000; ++i) {
      SimTime t = 1000 + i * kUsec;
      sharded.sim(0)->ScheduleAt(t, [&, t] {
        PacketPtr p = pool.Allocate();
        ASSERT_NE(p, nullptr);
        p->src_host = 0;
        p->dst_host = 1;
        p->wire_bytes = 100;
        group.fabric(0)->Route(std::move(p), t);
      });
    }
    sharded.RunFor(4 * kMsec);
    EXPECT_EQ(delivered, 1000);
    return sharded.progress().epochs;
  };
  NicParams flat;
  NicParams clustered;
  clustered.hosts_per_cluster = 1;  // every host its own cluster
  clustered.inter_cluster_extra_delay = 8 * kUsec;
  int64_t flat_epochs = run(flat);
  int64_t clustered_epochs = run(clustered);
  // Cross-cluster lookahead is (prop + 8us) instead of prop: epochs cover
  // several packets instead of one.
  EXPECT_LT(clustered_epochs * 3, flat_epochs);
}

TEST(ShardedSimTest, RingOverflowSpillPreservesOrder) {
  // One epoch emits far more handoffs than the per-channel rings hold
  // (kChannelBatches * kHandoffBatchSize = 1024): the overflow spills,
  // and delivery order at the destination is still exactly emission
  // order.
  ShardedSim::Options options;
  options.num_shards = 2;
  options.lookahead = NicParams{}.propagation_delay;
  ShardedSim sharded(options);
  ShardedFabricGroup group(&sharded, NicParams{});
  group.fabric(0)->AddHost();
  group.fabric(1)->AddHost();

  const int kPackets = 2500;
  std::vector<uint64_t> received;
  group.fabric(1)->nic(1)->SetRxTap(
      [&](const Packet& p) { received.push_back(p.steering_hash); });
  PacketPool pool(4096, "src");
  for (int i = 0; i < kPackets; ++i) {
    SimTime t = 1000 + i;  // 1ns apart: all inside one epoch
    sharded.sim(0)->ScheduleAt(t, [&, t, i] {
      PacketPtr p = pool.Allocate();
      ASSERT_NE(p, nullptr);
      p->src_host = 0;
      p->dst_host = 1;
      p->wire_bytes = 64;
      p->steering_hash = static_cast<uint64_t>(i);
      group.fabric(0)->Route(std::move(p), t);
    });
  }
  sharded.RunFor(10 * kMsec);

  ASSERT_EQ(received.size(), static_cast<size_t>(kPackets));
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_EQ(received[i], static_cast<uint64_t>(i))
        << "delivery order diverged from emission order at " << i;
  }
  const ShardedFabricGroup::ExchangeStats xs = group.exchange_stats();
  EXPECT_EQ(xs.cross_shard, kPackets);
  EXPECT_GT(xs.ring_overflow, 0) << "burst never overflowed the ring; "
                                    "the spill path was not exercised";
}

TEST(ShardedSimTest, CrossShardPacketConservationUnderChaos) {
  SeedSweepOptions options;
  options.num_seeds = 1;
  options.check_replay = false;
  options.shards = 4;
  SeedSweepRunner runner(options);
  auto profiles = SeedSweepRunner::DefaultProfiles();
  // The combined profile: loss, reorder, duplication, corruption, jitter.
  SweepRunResult result = runner.RunOne(7, profiles.back());
  EXPECT_TRUE(result.ok) << "invariant violations in sharded run";
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.delivered_messages, 0);
  // Hosts 0 and 1 live on shards 0 and 1: every data/ack packet crossed
  // shards through the barrier exchange.
  EXPECT_GT(result.exchange_cross_shard, 0);
  EXPECT_GT(result.epochs, 0);
}

TEST(ShardedSimTest, ShardCountInvariantFinalState) {
  auto run = [](int shards) {
    SeedSweepOptions options;
    options.num_seeds = 1;
    options.check_replay = false;
    options.shards = shards;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    return runner.RunOne(11, profiles.back());
  };
  SweepRunResult serial = run(1);
  EXPECT_TRUE(serial.ok);
  for (int shards : {2, 4}) {
    SweepRunResult sharded = run(shards);
    EXPECT_TRUE(sharded.ok);
    EXPECT_EQ(serial.trace_digest, sharded.trace_digest) << shards;
    EXPECT_EQ(serial.delivered_messages, sharded.delivered_messages);
    EXPECT_EQ(serial.retransmits, sharded.retransmits);
    // Merged telemetry is byte-stable across shard counts (same names,
    // same values, deterministically name-ordered).
    EXPECT_EQ(serial.telemetry, sharded.telemetry) << shards << " shards";
  }
}

TEST(ShardedSimTest, ThreadedExecutionBitIdenticalToSequential) {
  auto run = [](int threads) {
    SeedSweepOptions options;
    options.num_seeds = 1;
    options.check_replay = false;
    options.shards = 4;
    options.shard_threads = threads;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    return runner.RunOne(23, profiles.back());
  };
  SweepRunResult sequential = run(0);
  SweepRunResult threaded = run(4);
  EXPECT_TRUE(sequential.ok);
  EXPECT_TRUE(threaded.ok);
  EXPECT_EQ(sequential.trace_digest, threaded.trace_digest);
  EXPECT_EQ(sequential.delivered_messages, threaded.delivered_messages);
  EXPECT_EQ(sequential.telemetry, threaded.telemetry);
  EXPECT_EQ(sequential.epochs, threaded.epochs);
  EXPECT_EQ(sequential.exchange_handoffs, threaded.exchange_handoffs);
}

TEST(ShardedSimTest, MergedTelemetryAtSixteenShardsMatchesSerial) {
  auto run = [](int shards) {
    SeedSweepOptions options;
    options.num_seeds = 1;
    options.check_replay = false;
    options.shards = shards;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    return runner.RunOne(13, profiles.back());
  };
  SweepRunResult serial = run(1);
  SweepRunResult wide = run(16);  // 14 shards own no hosts at all
  EXPECT_TRUE(serial.ok);
  EXPECT_TRUE(wide.ok);
  EXPECT_EQ(serial.trace_digest, wide.trace_digest);
  // The merged registry is a name-ordered map: equality is byte-for-byte
  // identical names AND values, independent of where hosts ran.
  EXPECT_EQ(serial.telemetry, wide.telemetry);
}

// MergedTelemetryValues must be a pure function of the workload: a tiny
// clustered RPC rack run at 16 shards under round-robin, contiguous, and
// traffic-aware placements — and at one shard — produces one identical
// merged snapshot.
TEST(ShardedSimTest, MergedTelemetryInvariantUnderTrafficAwarePlacement) {
  RpcRackConfig config;
  config.hosts = 16;
  config.jobs_per_host = 1;
  config.offered_gbps_per_host = 1.0;
  config.response_bytes = 64 * 1024;
  config.prober_qps = 200.0;
  config.cluster_hosts = 4;
  config.nic_params.hosts_per_cluster = 4;
  config.nic_params.inter_cluster_extra_delay = 2 * kUsec;
  config.seed = 5;
  config.host_options.group.mode = SchedulingMode::kDedicatedCores;
  config.host_options.group.dedicated_cores = {0};

  auto run = [&](int shards, const Placement* placement) {
    ShardedRack rack(config.seed, config.hosts, config.host_options, shards,
                     /*num_threads=*/0, config.queue_kind, config.nic_params,
                     placement);
    // Ring workload: host h streams a few messages to host h+1, so every
    // placement splits some pairs across shards and keeps others local.
    std::vector<PonyEngine*> engines;
    std::vector<std::unique_ptr<PonyClient>> clients;
    for (int h = 0; h < config.hosts; ++h) {
      engines.push_back(rack.host(h)->CreatePonyEngine("e"));
      clients.push_back(rack.host(h)->CreateClient(engines.back(), "app"));
    }
    CpuCostSink cost;
    for (int h = 0; h < config.hosts; ++h) {
      PonyAddress peer = engines[(h + 1) % config.hosts]->address();
      uint64_t stream = clients[h]->CreateStream(peer);
      for (int m = 0; m < 4; ++m) {
        clients[h]->SendMessage(peer, stream, 2000, {}, &cost);
      }
    }
    rack.sharded().RunFor(20 * kMsec);
    // Publish per-host receive totals into each host's home registry:
    // every placement must merge to the same map (engine counters are only
    // populated by rebalance events, so the workload provides the values).
    for (int h = 0; h < config.hosts; ++h) {
      int64_t msgs = 0;
      int64_t bytes = 0;
      while (auto m = clients[h]->PollMessage(&cost)) {
        ++msgs;
        bytes += m->length;
      }
      Telemetry& t = rack.host(h)->sim()->telemetry();
      t.GetCounter("app/host" + std::to_string(h) + "/rx_msgs")->Add(msgs);
      t.GetCounter("app/host" + std::to_string(h) + "/rx_bytes")->Add(bytes);
    }
    return rack.sharded().MergedTelemetryValues();
  };

  TrafficMatrix traffic = BuildRackTrafficMatrix(config);
  Placement aware = Placement::TrafficAware(traffic, 16);
  Placement contiguous = Placement::Contiguous(config.hosts, 16);
  std::map<std::string, int64_t> serial = run(1, nullptr);
  std::map<std::string, int64_t> round_robin = run(16, nullptr);
  std::map<std::string, int64_t> aware_values = run(16, &aware);
  std::map<std::string, int64_t> contiguous_values = run(16, &contiguous);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, round_robin);
  EXPECT_EQ(serial, aware_values);
  EXPECT_EQ(serial, contiguous_values);
}

// The profiler is pure observation: arming it must not change the
// simulated outcome, and two profiled runs of the same seed must agree
// byte-for-byte on every deterministic surface (trace digest included —
// profiled traces carry the extra kProfilerTrack counters, so they are
// compared against profiled traces).
TEST(ShardedSimTest, ProfilingIsPureObservation) {
  auto run = [](bool profiled) {
    SeedSweepOptions options;
    options.num_seeds = 1;
    options.check_replay = false;
    options.shards = 4;
    options.enable_profiling = profiled;
    SeedSweepRunner runner(options);
    auto profiles = SeedSweepRunner::DefaultProfiles();
    return runner.RunOne(29, profiles.back());
  };
  SweepRunResult plain = run(false);
  SweepRunResult profiled = run(true);
  SweepRunResult profiled2 = run(true);
  EXPECT_TRUE(plain.ok);
  EXPECT_TRUE(profiled.ok);
  EXPECT_EQ(plain.delivered_messages, profiled.delivered_messages);
  EXPECT_EQ(plain.retransmits, profiled.retransmits);
  EXPECT_EQ(plain.epochs, profiled.epochs);
  // Simulated outcome identical: every metric the plain run had exists
  // with the same value in the profiled run (which adds sim/shard/* and
  // net/shard/* profiler metrics on top).
  for (const auto& [name, value] : plain.telemetry) {
    auto it = profiled.telemetry.find(name);
    ASSERT_NE(it, profiled.telemetry.end()) << name;
    EXPECT_EQ(it->second, value) << name;
  }
  EXPECT_GT(profiled.telemetry.count("sim/shard/0/epochs"), 0u);
  EXPECT_GT(profiled.telemetry.count("net/shard/0/handoff_in"), 0u);
  // Deterministic per seed: profiled == profiled, bit for bit.
  EXPECT_EQ(profiled.trace_digest, profiled2.trace_digest);
  EXPECT_EQ(profiled.telemetry, profiled2.telemetry);
}

TEST(ShardedSimTest, MergedTelemetrySumsAcrossShards) {
  ShardedSim::Options options;
  options.num_shards = 3;
  ShardedSim sharded(options);
  sharded.sim(0)->telemetry().GetCounter("a/x")->Add(1);
  sharded.sim(1)->telemetry().GetCounter("a/x")->Add(2);
  sharded.sim(2)->telemetry().GetCounter("b/y")->Add(5);
  std::map<std::string, int64_t> merged = sharded.MergedTelemetryValues();
  EXPECT_EQ(merged.at("a/x"), 3);
  EXPECT_EQ(merged.at("b/y"), 5);
  EXPECT_EQ(merged.size(), 2u);
}

}  // namespace
}  // namespace snap
