// Doorbell (src/util/doorbell.h) tests: the Dekker park/wake handshake
// behind every live-mode blocking path — executor parking, scheduler
// workers, and the application completion-notify doorbell.
//
// The lost-wakeup audit, as a test: a ring that lands between the
// waiter's "is there work?" check and its park must not be missed. The
// stress tests run with park timeouts far longer than the test deadline
// budget allows per item, so a single lost wakeup shows up as a stall
// (deadline blowout), not as noise. Run these under TSan (the live;tsan
// label) to also pin the seq_cst ordering the handshake depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/live/live_executor.h"
#include "src/util/doorbell.h"

namespace snap {
namespace {

constexpr int64_t kTestDeadlineNs = 20LL * 1000 * 1000 * 1000;  // 20 s

TEST(DoorbellTest, RingWithNoWaiterLatchesUntilConsumed) {
  Doorbell bell;
  EXPECT_FALSE(bell.pending());
  EXPECT_FALSE(bell.Consume());
  bell.Ring();
  bell.Ring();  // edge-triggered: a second ring folds into the latch
  EXPECT_TRUE(bell.pending());
  EXPECT_TRUE(bell.Consume());
  EXPECT_FALSE(bell.pending());
  EXPECT_FALSE(bell.Consume());
  EXPECT_EQ(bell.rings(), 2);
}

TEST(DoorbellTest, WaitForTimesOutWhenNeverRung) {
  Doorbell bell;
  int64_t t0 = MonotonicTimeNs();
  EXPECT_FALSE(bell.WaitFor(2'000'000));  // 2 ms
  int64_t elapsed = MonotonicTimeNs() - t0;
  EXPECT_GE(elapsed, 1'000'000);  // actually slept (>= 1 ms)
  EXPECT_EQ(bell.waits(), 1);
}

TEST(DoorbellTest, WaitForReturnsImmediatelyWhenAlreadyRungAndDoesNotConsume) {
  Doorbell bell;
  bell.Ring();
  int64_t t0 = MonotonicTimeNs();
  EXPECT_TRUE(bell.WaitFor(5'000'000'000));  // would be 5 s if it slept
  EXPECT_LT(MonotonicTimeNs() - t0, 1'000'000'000);
  // WaitFor reports the latch but leaves consumption to the loop-top
  // Consume().
  EXPECT_TRUE(bell.pending());
  EXPECT_TRUE(bell.Consume());
}

TEST(DoorbellTest, RingWakesParkedWaiterPromptly) {
  Doorbell bell;
  std::atomic<int64_t> woke_at{0};
  std::thread waiter([&] {
    // Park far longer than the ringer's delay: returning early proves the
    // notify landed, not the timeout.
    bell.WaitFor(10'000'000'000);
    woke_at.store(MonotonicTimeNs(), std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  int64_t rang_at = MonotonicTimeNs();
  bell.Ring();
  waiter.join();
  EXPECT_TRUE(bell.Consume());
  // Woke within a second of the ring, not after the 10 s timeout.
  EXPECT_LT(woke_at.load(std::memory_order_acquire) - rang_at,
            1'000'000'000);
}

// The lost-wakeup stress: multiple producers publish work (an atomic
// counter) and ring; one consumer parks with a 50 ms timeout whenever a
// pass finds nothing. If any ring between the consumer's check and its
// park were lost, the consumer would stall 50 ms per loss and miss the
// deadline. Producers yield and sleep to scatter rings across every phase
// of the waiter's park/wake cycle.
TEST(DoorbellStressTest, NoLostWakeupsWithManyRingers) {
  constexpr int kProducers = 4;
  constexpr int64_t kItemsPerProducer = 5000;
  constexpr int64_t kTotal = kProducers * kItemsPerProducer;
  Doorbell bell;
  std::atomic<int64_t> produced{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int64_t i = 0; i < kItemsPerProducer; ++i) {
        produced.fetch_add(1, std::memory_order_release);
        bell.Ring();
        if (i % 64 == p) {
          std::this_thread::yield();
        }
        if (i % 1024 == 0) {
          // Let the consumer drain and actually park.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }

  int64_t consumed = 0;
  int64_t deadline = MonotonicTimeNs() + kTestDeadlineNs;
  while (consumed < kTotal && MonotonicTimeNs() < deadline) {
    bell.Consume();  // loop-top: rings after this point trigger a re-pass
    int64_t available = produced.load(std::memory_order_acquire);
    if (available > consumed) {
      consumed = available;
      continue;
    }
    bell.WaitFor(50'000'000);  // 50 ms: a lost wakeup costs a full park
  }
  for (std::thread& t : producers) {
    t.join();
  }
  consumed = produced.load(std::memory_order_acquire);

  EXPECT_EQ(consumed, kTotal) << "consumer stalled: lost wakeup";
  EXPECT_EQ(bell.rings(), kTotal);
}

// Same audit one layer up: a standalone LiveExecutor parks on its
// doorbell (spin window 0 = park immediately, max park 1 s) while a
// producer publishes work through the poll hook and rings Wake(). A lost
// wakeup would stall the executor up to a second per loss; 20k items with
// scattered producer sleeps must still finish well inside the deadline.
TEST(DoorbellStressTest, ExecutorParkWakeUnderProducerChurn) {
  constexpr int64_t kItems = 20'000;
  LiveExecutor::Options options;
  options.name = "park-stress";
  options.spin_before_park = 0;             // maximal park pressure
  options.max_park = 1'000'000'000;         // 1 s: parks must be woken
  LiveExecutor exec(/*seed=*/1, /*epoch_ns=*/MonotonicTimeNs(), options);

  std::atomic<int64_t> produced{0};
  std::atomic<int64_t> consumed{0};
  exec.SetPollHook([&] {
    int64_t available = produced.load(std::memory_order_acquire);
    int64_t done = consumed.load(std::memory_order_relaxed);
    int64_t batch = available - done;
    consumed.store(available, std::memory_order_release);
    return static_cast<int>(batch);
  });
  exec.Start();

  std::thread producer([&] {
    for (int64_t i = 0; i < kItems; ++i) {
      produced.fetch_add(1, std::memory_order_release);
      exec.Wake();
      if (i % 257 == 0) {
        // Outlast the (zero) spin window so the executor really parks.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  });
  producer.join();

  int64_t deadline = MonotonicTimeNs() + kTestDeadlineNs;
  while (consumed.load(std::memory_order_acquire) < kItems &&
         MonotonicTimeNs() < deadline) {
    std::this_thread::yield();
  }
  exec.Stop();

  EXPECT_EQ(consumed.load(std::memory_order_acquire), kItems)
      << "executor stalled: lost wakeup";
  LiveExecutor::Stats stats = exec.GetStats();
  EXPECT_GE(stats.work_items, kItems);
  EXPECT_GT(stats.parks, 0) << "stress never exercised the park path";
  EXPECT_GT(stats.wakes, 0);
}

}  // namespace
}  // namespace snap
