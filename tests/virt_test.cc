// Tests of the virtualization engine (guest VM I/O switching, encap across
// the fabric, per-guest policy) and the kernel packet-injection driver
// (kernel TCP egress diverted through a Snap shaping engine).
#include <gtest/gtest.h>

#include "src/apps/simhost.h"
#include "src/apps/tcp_apps.h"
#include "src/snap/kernel_injection.h"
#include "src/snap/virtual_switch.h"

namespace snap {
namespace {

SimHostOptions Dedicated() {
  SimHostOptions options;
  options.group.mode = SchedulingMode::kDedicatedCores;
  options.group.dedicated_cores = {0};
  return options;
}

class VirtualSwitchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(71);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
    a_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), Dedicated());
    b_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), Dedicated());
  }

  // Builds a virtual switch on `host` and registers it with its group.
  VirtualSwitchEngine* MakeSwitch(SimHost* host, uint32_t engine_id,
                                  const VirtualSwitchEngine::Options& o =
                                      VirtualSwitchEngine::Options{}) {
    auto engine = std::make_unique<VirtualSwitchEngine>(
        "vswitch" + std::to_string(engine_id), sim_.get(), host->nic(),
        engine_id, o);
    VirtualSwitchEngine* raw = engine.get();
    switches_.push_back(std::move(engine));
    host->default_group()->AddEngine(raw);
    return raw;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
  std::unique_ptr<SimHost> a_;
  std::unique_ptr<SimHost> b_;
  std::vector<std::unique_ptr<VirtualSwitchEngine>> switches_;
};

TEST_F(VirtualSwitchTest, LocalVmToVmNeverTouchesTheWire) {
  VirtualSwitchEngine* vs = MakeSwitch(a_.get(), 1000);
  GuestVnic* vm1 = vs->AddGuest(1);
  GuestVnic* vm2 = vs->AddGuest(2);
  int64_t wire_before = a_->nic()->stats().tx_packets;

  ASSERT_TRUE(vm1->Send(2, 1400, {7, 7, 7}));
  sim_->RunFor(1 * kMsec);

  PacketPtr got = vm2->Receive();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->virt_src_vm, 1u);
  EXPECT_EQ(got->data, (std::vector<uint8_t>{7, 7, 7}));
  EXPECT_EQ(vs->stats().switched_local, 1);
  EXPECT_EQ(vs->stats().encapsulated, 0);
  EXPECT_EQ(a_->nic()->stats().tx_packets, wire_before);
}

TEST_F(VirtualSwitchTest, CrossHostTrafficIsEncapsulated) {
  VirtualSwitchEngine* vs_a = MakeSwitch(a_.get(), 1000);
  VirtualSwitchEngine* vs_b = MakeSwitch(b_.get(), 1000);
  GuestVnic* vm1 = vs_a->AddGuest(1);
  GuestVnic* vm9 = vs_b->AddGuest(9);
  vs_a->AddRoute(9, b_->host_id(), vs_b->engine_id());

  ASSERT_TRUE(vm1->Send(9, 1400, {1, 2, 3, 4}));
  sim_->RunFor(2 * kMsec);

  PacketPtr got = vm9->Receive();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->virt_src_vm, 1u);
  EXPECT_EQ(got->virt_dst_vm, 9u);
  EXPECT_EQ(got->data, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(vs_a->stats().encapsulated, 1);
  EXPECT_EQ(vs_b->stats().decapsulated, 1);
  (void)vm1;
}

TEST_F(VirtualSwitchTest, UnroutableDestinationDropped) {
  VirtualSwitchEngine* vs = MakeSwitch(a_.get(), 1000);
  GuestVnic* vm1 = vs->AddGuest(1);
  ASSERT_TRUE(vm1->Send(42, 100));
  sim_->RunFor(1 * kMsec);
  EXPECT_EQ(vs->stats().no_route_drops, 1);
}

TEST_F(VirtualSwitchTest, GuestAclBlocksPairs) {
  VirtualSwitchEngine* vs = MakeSwitch(a_.get(), 1000);
  GuestVnic* vm1 = vs->AddGuest(1);
  GuestVnic* vm2 = vs->AddGuest(2);
  vs->acl()->Deny(1, 2);  // inner (vm) addresses
  ASSERT_TRUE(vm1->Send(2, 100));
  sim_->RunFor(1 * kMsec);
  EXPECT_EQ(vm2->Receive(), nullptr);
  EXPECT_EQ(vs->stats().acl_drops, 1);
  // Reverse direction unaffected.
  ASSERT_TRUE(vm2->Send(1, 100));
  sim_->RunFor(1 * kMsec);
  EXPECT_NE(vm1->Receive(), nullptr);
}

TEST_F(VirtualSwitchTest, PerGuestRateLimitShapesEgress) {
  VirtualSwitchEngine::Options options;
  options.guest_rate_bytes_per_sec = 12.5e6;  // 100 Mbps per guest
  options.guest_burst_bytes = 16 * 1024;
  VirtualSwitchEngine* vs = MakeSwitch(a_.get(), 1000, options);
  GuestVnic* vm1 = vs->AddGuest(1);
  GuestVnic* vm2 = vs->AddGuest(2);
  // Offer ~1 Gbps for 100ms; the receiving guest drains its ring.
  int64_t drained = 0;
  for (int ms = 0; ms < 100; ++ms) {
    for (int i = 0; i < 85; ++i) {
      vm1->Send(2, 1436);
    }
    sim_->RunFor(1 * kMsec);
    while (vm2->Receive() != nullptr) {
      ++drained;
    }
  }
  double delivered_rate =
      static_cast<double>(drained) * 1500.0 / ToSec(sim_->now());
  EXPECT_LT(delivered_rate, 15e6);  // near the 12.5 MB/s policy
  EXPECT_GT(delivered_rate, 9e6);
  EXPECT_GT(vs->stats().shaped_drops + vm1->stats().tx_ring_full, 0);
}

TEST_F(VirtualSwitchTest, RoutesSurviveSerialization) {
  VirtualSwitchEngine* vs = MakeSwitch(a_.get(), 1000);
  vs->AddRoute(5, 1, 77);
  vs->AddRoute(6, 2, 88);
  StateWriter w;
  vs->SerializeState(&w);

  VirtualSwitchEngine::Options options;
  VirtualSwitchEngine restored("restored", sim_.get(), b_->nic(), 2000,
                               options);
  StateReader r(w.buffer());
  restored.DeserializeState(&r);
  EXPECT_EQ(restored.engine_id(), 1000u);
  EXPECT_EQ(restored.Footprint().flows, 2);
}

// --- Kernel packet-injection driver --------------------------------------

TEST(KernelInjectionTest, KernelTcpIsShapedBySnapEngine) {
  Simulator sim(73);
  Fabric fabric(&sim, NicParams{});
  PonyDirectory directory;
  SimHost a(&sim, &fabric, &directory, Dedicated());
  SimHost b(&sim, &fabric, &directory, Dedicated());

  // Divert host A's kernel egress through a 1 Gbps shaping engine.
  ShapingEngine::Options shaping;
  shaping.rate_bytes_per_sec = 125e6;
  ShapingEngine engine("shaper", &sim, a.nic(), shaping);
  a.default_group()->AddEngine(&engine);
  KernelInjectionDriver driver(a.kstack(), &engine);

  TcpStreamReceiverTask rx("rx", b.cpu(), b.kstack(), 5001);
  rx.Start();
  TcpStreamSenderTask::Options so;
  so.dst_host = b.host_id();
  TcpStreamSenderTask tx("tx", a.cpu(), a.kstack(), so);
  tx.Start();
  sim.RunFor(200 * kMsec);

  // Unshaped TCP runs >20 Gbps; the policy caps it near 1 Gbps.
  double gbps = static_cast<double>(rx.bytes_received()) * 8.0 /
                ToSec(sim.now()) / 1e9;
  EXPECT_GT(driver.stats().diverted, 0);
  EXPECT_LT(gbps, 1.2);
  EXPECT_GT(gbps, 0.5);

  // Detaching restores the direct path at full speed.
  driver.Detach();
  int64_t bytes0 = rx.bytes_received();
  sim.RunFor(100 * kMsec);
  double after = static_cast<double>(rx.bytes_received() - bytes0) * 8.0 /
                 ToSec(100 * kMsec) / 1e9;
  EXPECT_GT(after, 5.0);
}

}  // namespace
}  // namespace snap
