// Click-style element tests: counters, ACLs, rate limiting/shaping,
// classification, CRC verification, and the shaping engine end to end.
#include <gtest/gtest.h>

#include "src/apps/simhost.h"
#include "src/packet/wire.h"
#include "src/snap/elements.h"
#include "src/snap/shaping_engine.h"

namespace snap {
namespace {

PacketPtr MakePacket(int src, int dst, int payload) {
  auto p = std::make_unique<Packet>();
  p->src_host = src;
  p->dst_host = dst;
  p->payload_bytes = payload;
  p->wire_bytes = payload + 64;
  return p;
}

TEST(CounterElementTest, CountsPacketsAndBytes) {
  CounterElement counter("c");
  for (int i = 0; i < 3; ++i) {
    PacketPtr p = MakePacket(0, 1, 1000);
    EXPECT_EQ(counter.Process(0, p), ElementVerdict::kPass);
  }
  EXPECT_EQ(counter.packets(), 3);
  EXPECT_EQ(counter.bytes(), 3 * 1064);
}

TEST(AclElementTest, DropsDeniedPairs) {
  AclElement acl("acl");
  acl.Deny(3, 7);
  PacketPtr denied = MakePacket(3, 7, 100);
  EXPECT_EQ(acl.Process(0, denied), ElementVerdict::kDrop);
  EXPECT_EQ(denied, nullptr);
  PacketPtr allowed = MakePacket(3, 8, 100);
  EXPECT_EQ(acl.Process(0, allowed), ElementVerdict::kPass);
  EXPECT_NE(allowed, nullptr);
  EXPECT_EQ(acl.dropped(), 1);
}

TEST(AclElementTest, WildcardRules) {
  AclElement acl("acl");
  acl.Deny(-1, 9);  // any source to host 9
  PacketPtr p1 = MakePacket(0, 9, 100);
  PacketPtr p2 = MakePacket(5, 9, 100);
  PacketPtr p3 = MakePacket(5, 8, 100);
  EXPECT_EQ(acl.Process(0, p1), ElementVerdict::kDrop);
  EXPECT_EQ(acl.Process(0, p2), ElementVerdict::kDrop);
  EXPECT_EQ(acl.Process(0, p3), ElementVerdict::kPass);
}

TEST(RateLimiterTest, PassesWithinBurst) {
  RateLimiterElement limiter("rl", 1e9, 10000, 16);
  PacketPtr p = MakePacket(0, 1, 1000);
  EXPECT_EQ(limiter.Process(0, p), ElementVerdict::kPass);
}

TEST(RateLimiterTest, QueuesBeyondBurstAndReleasesOverTime) {
  // 1 GB/s, 2KB burst: the first ~2 packets pass, the rest queue.
  RateLimiterElement limiter("rl", 1e9, 2048, 64);
  int passed = 0;
  int queued = 0;
  for (int i = 0; i < 10; ++i) {
    PacketPtr p = MakePacket(0, 1, 1000);
    ElementVerdict v = limiter.Process(0, p);
    if (v == ElementVerdict::kPass) {
      ++passed;
    } else if (v == ElementVerdict::kConsume) {
      ++queued;
    }
  }
  EXPECT_GT(passed, 0);
  EXPECT_GT(queued, 0);
  EXPECT_EQ(limiter.queued(), static_cast<size_t>(queued));
  // One packet (1064B) needs ~1.06us of tokens at 1GB/s.
  int released = 0;
  SimTime t = 0;
  while (released < queued && t < 1 * kMsec) {
    t += 1 * kUsec;
    released += limiter.Release(t, [](PacketPtr) {});
  }
  EXPECT_EQ(released, queued);
  // Total time ~ bytes/rate.
  EXPECT_NEAR(static_cast<double>(t),
              static_cast<double>(queued) * 1064.0, 8000.0);
}

TEST(RateLimiterTest, OverflowDrops) {
  RateLimiterElement limiter("rl", 1e6, 100, 4);  // tiny rate, queue of 4
  int drops = 0;
  for (int i = 0; i < 10; ++i) {
    PacketPtr p = MakePacket(0, 1, 1000);
    if (limiter.Process(0, p) == ElementVerdict::kDrop) {
      ++drops;
    }
  }
  EXPECT_EQ(limiter.dropped(), drops);
  EXPECT_GT(drops, 0);
  EXPECT_EQ(limiter.queued(), 4u);
}

TEST(RateLimiterTest, QueueingDelayReportsHeadAge) {
  RateLimiterElement limiter("rl", 1e6, 100, 16);
  PacketPtr p = MakePacket(0, 1, 1000);
  limiter.Process(1000, p);
  EXPECT_EQ(limiter.QueueingDelay(5000), 4000);
}

TEST(ClassifierTest, RoutesByPredicate) {
  ClassifierElement classifier("qos", [](const Packet& p) {
    return p.payload_bytes > 500 ? 1 : 0;
  });
  PacketPtr small = MakePacket(0, 1, 100);
  PacketPtr big = MakePacket(0, 1, 1000);
  classifier.Process(0, small);
  classifier.Process(0, big);
  classifier.Process(0, big);
  EXPECT_EQ(classifier.class_count(0), 1);
  EXPECT_EQ(classifier.class_count(1), 2);
}

TEST(CrcCheckTest, DropsCorruptedPayload) {
  CrcCheckElement crc("crc");
  auto p = std::make_unique<Packet>();
  p->proto = WireProtocol::kPony;
  p->data = {1, 2, 3, 4};
  p->payload_bytes = 4;
  p->wire_bytes = 68;
  p->pony.crc32 = PonyPacketCrc(p->pony, p->data);
  EXPECT_EQ(crc.Process(0, p), ElementVerdict::kPass);
  // Corrupt one byte: dropped.
  p->data[2] ^= 0xFF;
  EXPECT_EQ(crc.Process(0, p), ElementVerdict::kDrop);
  EXPECT_EQ(crc.corrupt_drops(), 1);
}

TEST(PipelineTest, RunsElementsInOrderAndStopsOnDrop) {
  Pipeline pipeline;
  auto counter_before = std::make_unique<CounterElement>("before");
  auto acl = std::make_unique<AclElement>("acl");
  acl->Deny(0, 1);
  auto counter_after = std::make_unique<CounterElement>("after");
  CounterElement* before = counter_before.get();
  CounterElement* after = counter_after.get();
  pipeline.Append(std::move(counter_before));
  pipeline.Append(std::move(acl));
  pipeline.Append(std::move(counter_after));

  PacketPtr p = MakePacket(0, 1, 100);
  Pipeline::RunResult result = pipeline.Run(0, p);
  EXPECT_EQ(result.verdict, ElementVerdict::kDrop);
  EXPECT_GT(result.cpu_ns, 0);
  EXPECT_EQ(before->packets(), 1);
  EXPECT_EQ(after->packets(), 0);
}

// --- ShapingEngine end-to-end on the simulated host -----------------------

TEST(ShapingEngineTest, EnforcesConfiguredRate) {
  Simulator sim(3);
  Fabric fabric(&sim, NicParams{});
  Nic* src = fabric.AddHost();
  fabric.AddHost();
  CpuParams cpu_params;
  CpuScheduler cpu(&sim, cpu_params);

  ShapingEngine::Options options;
  options.rate_bytes_per_sec = 125e6;  // 1 Gbps policy
  options.burst_bytes = 64 * 1024;
  ShapingEngine engine("shaper", &sim, src, options);
  auto group = EngineGroup::Create("g", &sim, &cpu, [] {
    EngineGroup::Options o;
    o.mode = SchedulingMode::kDedicatedCores;
    o.dedicated_cores = {0};
    return o;
  }());
  group->AddEngine(&engine);

  // Offer ~2.4x the policy rate for 100ms.
  for (int burst = 0; burst < 100; ++burst) {
    for (int i = 0; i < 200; ++i) {
      auto p = std::make_unique<Packet>();
      p->src_host = 0;
      p->dst_host = 1;
      p->payload_bytes = 1436;
      p->wire_bytes = 1500;
      engine.Inject(std::move(p));
    }
    sim.RunFor(1 * kMsec);
  }
  double offered = 100 * 200 * 1500.0;          // ~30 MB offered
  double shaped = static_cast<double>(engine.stats().transmitted) * 1500.0;
  double rate = shaped / ToSec(sim.now());
  EXPECT_LT(rate, 135e6);  // within ~8% of the 125 MB/s policy
  EXPECT_GT(rate, 100e6);
  EXPECT_LT(shaped, offered);
  EXPECT_GT(engine.shaper()->dropped() + engine.stats().input_drops, 0);
}

TEST(ShapingEngineTest, AclDropsBeforeShaping) {
  Simulator sim(3);
  Fabric fabric(&sim, NicParams{});
  Nic* src = fabric.AddHost();
  fabric.AddHost();
  CpuParams cpu_params;
  CpuScheduler cpu(&sim, cpu_params);
  ShapingEngine engine("shaper", &sim, src, ShapingEngine::Options{});
  engine.acl()->Deny(-1, 1);
  auto group = EngineGroup::Create("g", &sim, &cpu, [] {
    EngineGroup::Options o;
    o.mode = SchedulingMode::kDedicatedCores;
    o.dedicated_cores = {0};
    return o;
  }());
  group->AddEngine(&engine);
  for (int i = 0; i < 10; ++i) {
    auto p = std::make_unique<Packet>();
    p->src_host = 0;
    p->dst_host = 1;
    p->payload_bytes = 100;
    p->wire_bytes = 164;
    engine.Inject(std::move(p));
  }
  sim.RunFor(10 * kMsec);
  EXPECT_EQ(engine.acl()->dropped(), 10);
  EXPECT_EQ(engine.stats().transmitted, 0);
}

}  // namespace
}  // namespace snap
