#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace snap {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("engine missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "engine missing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: engine missing");
}

TEST(StatusTest, AllErrorConstructorsSetCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

// --- StatusOr -------------------------------------------------------------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

Status UseParsed(int x, int* out) {
  SNAP_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseParsed(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseParsed(-1, &out).code(), StatusCode::kInvalidArgument);
}

// --- Rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextExponential(50.0);
  }
  double mean = sum / kSamples;
  EXPECT_NEAR(mean, 50.0, 1.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBernoulli(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.25, 0.01);
}

}  // namespace
}  // namespace snap
