// Live loopback soak: bidirectional RPC between two hosts — two engine
// threads plus four application threads all running concurrently — sized
// to give TSan real interleavings over every cross-thread edge: SPSC
// command/completion rings, the loopback packet rings, the executor
// park/wake handshake, and the shared atomic clocks. Run under
// -DSNAP_SANITIZE=thread this is the data-race gate for src/live/.
#include <gtest/gtest.h>

#include <thread>

#include "src/live/live_apps.h"
#include "src/live/live_runtime.h"

namespace snap {
namespace {

TEST(LiveSoakTest, BidirectionalLoopbackRpcUnderConcurrency) {
  constexpr int kIterations = 200;
  constexpr int64_t kBytes = 256;
  constexpr int64_t kDeadlineNs = 60LL * 1000 * 1000 * 1000;

  LiveRuntime::Options options;
  options.num_hosts = 2;
  options.fabric = LiveRuntime::FabricKind::kLoopback;
  // Small rings force the occasional full-ring drop so the retransmit
  // path runs concurrently too.
  options.loopback.ring_entries = 64;
  LiveRuntime runtime(options);
  ASSERT_TRUE(runtime.Init().ok());
  runtime.EnableSeriesSampling(10 * kMsec);

  // Host 0: RPC client -> host 1 echo server, and vice versa.
  auto client0 = runtime.host(0)->CreateClient("rpc-0");
  auto server0 = runtime.host(0)->CreateClient("echo-0");
  auto client1 = runtime.host(1)->CreateClient("rpc-1");
  auto server1 = runtime.host(1)->CreateClient("echo-1");
  PonyAddress addr0 = runtime.host(0)->engine()->address();
  PonyAddress addr1 = runtime.host(1)->engine()->address();
  uint64_t ping01 = client0->CreateStream(addr1);
  uint64_t ping10 = client1->CreateStream(addr0);
  uint64_t reply0 = server0->CreateStream(addr1);
  uint64_t reply1 = server1->CreateStream(addr0);
  // Two clients share each engine, so the default sink cannot demux: bind
  // the inbound ping streams to the echo servers at the receivers (the
  // replies land on the default sinks, which are the RPC clients —
  // attached first on each host).
  runtime.host(1)->engine()->BindStream(ping01, server1.get(), addr0);
  runtime.host(0)->engine()->BindStream(ping10, server0.get(), addr1);

  runtime.Start();
  int64_t deadline = MonotonicTimeNs() + kDeadlineNs;
  LiveAppResult c0, c1, s0, s1;
  std::thread ts1([&] {
    s1 = RunLiveEchoServer(server1.get(), reply1, addr0, kIterations,
                           deadline);
  });
  std::thread ts0([&] {
    s0 = RunLiveEchoServer(server0.get(), reply0, addr1, kIterations,
                           deadline);
  });
  std::thread tc0([&] {
    c0 = RunLiveRpcClient(client0.get(), ping01, addr1, kIterations, kBytes,
                          /*outstanding=*/8, deadline);
  });
  std::thread tc1([&] {
    c1 = RunLiveRpcClient(client1.get(), ping10, addr0, kIterations, kBytes,
                          /*outstanding=*/8, deadline);
  });
  tc0.join();
  tc1.join();
  ts0.join();
  ts1.join();
  runtime.Stop();

  for (const LiveAppResult* r : {&c0, &c1, &s0, &s1}) {
    EXPECT_FALSE(r->timed_out);
    EXPECT_EQ(r->send_errors, 0);
  }
  EXPECT_EQ(c0.rpcs_completed, kIterations);
  EXPECT_EQ(c1.rpcs_completed, kIterations);
  EXPECT_EQ(s0.messages_received, kIterations);
  EXPECT_EQ(s1.messages_received, kIterations);
  for (int h = 0; h < 2; ++h) {
    const PonyEngine::Stats& stats = runtime.host(h)->engine()->stats();
    EXPECT_EQ(stats.crc_drops, 0);
    EXPECT_EQ(stats.corrupt_accepted, 0);
    EXPECT_EQ(stats.op_errors, 0);
  }
  // Post-stop reads are exact: both executors did real work.
  for (int h = 0; h < 2; ++h) {
    LiveExecutor::Stats stats = runtime.host(h)->executor()->GetStats();
    EXPECT_GT(stats.loop_iterations, 0);
    EXPECT_GT(stats.work_items, 0);
  }
}

}  // namespace
}  // namespace snap
