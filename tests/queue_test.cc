// Tests of the lock-free primitives, including real multi-threaded stress
// (the rings are Snap's shared-memory dataplane interfaces, Section 2.2).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <memory>
#include <thread>
#include <vector>

#include "src/queue/mailbox.h"
#include "src/queue/mpsc_queue.h"
#include "src/queue/spsc_ring.h"

namespace snap {
namespace {

// --- SpscRing -------------------------------------------------------------

TEST(SpscRingTest, PushPopBasic) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.TryPop().value(), 1);
  EXPECT_EQ(ring.TryPop().value(), 2);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, FullRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.TryPush(3));
  ring.TryPop();
  EXPECT_TRUE(ring.TryPush(3));
}

TEST(SpscRingTest, PeekDoesNotConsume) {
  SpscRing<int> ring(4);
  ring.TryPush(42);
  ASSERT_NE(ring.Peek(), nullptr);
  EXPECT_EQ(*ring.Peek(), 42);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.TryPop().value(), 42);
  EXPECT_EQ(ring.Peek(), nullptr);
}

TEST(SpscRingTest, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.TryPush(std::make_unique<int>(9)));
  auto out = ring.TryPop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 9);
}

TEST(SpscRingTest, WrapsAroundManyTimes) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_EQ(ring.TryPop().value(), i);
  }
}

TEST(SpscRingTest, FullEmptyAlternationAcrossWraparound) {
  // Drive the ring through repeated full->empty cycles so the full() and
  // empty() boundary conditions are checked at every index wrap offset.
  SpscRing<int> ring(2);
  int next = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    ASSERT_TRUE(ring.empty());
    ASSERT_FALSE(ring.TryPop().has_value());
    ASSERT_TRUE(ring.TryPush(next++));
    ASSERT_TRUE(ring.TryPush(next++));
    ASSERT_TRUE(ring.full());
    ASSERT_FALSE(ring.TryPush(-1));
    ASSERT_EQ(ring.TryPop().value(), next - 2);
    ASSERT_EQ(ring.TryPop().value(), next - 1);
  }
}

TEST(SpscRingTest, CachedHeadRefreshUnblocksPushAfterPop) {
  // The producer caches the consumer index: a push that sees an
  // apparently-full ring must refresh cached_head_ and succeed once the
  // consumer has freed a slot. (The equivalent claim under weak memory is
  // model-checked in model_check_test.cc.)
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.TryPush(1));
  ASSERT_TRUE(ring.TryPush(2));
  ASSERT_FALSE(ring.TryPush(3));  // primes a stale cached_head_
  ASSERT_EQ(ring.TryPop().value(), 1);
  EXPECT_TRUE(ring.TryPush(3));   // must observe the freed slot
  EXPECT_EQ(ring.size(), 2u);
}

TEST(SpscRingTest, CachedTailRefreshUnblocksPopAfterPush) {
  // Mirror image: a pop that sees an apparently-empty ring must refresh
  // cached_tail_ and succeed once the producer has published.
  SpscRing<int> ring(2);
  ASSERT_FALSE(ring.TryPop().has_value());  // primes a stale cached_tail_
  ASSERT_TRUE(ring.TryPush(7));
  auto v = ring.TryPop();
  ASSERT_TRUE(v.has_value());               // must observe the new element
  EXPECT_EQ(*v, 7);
}

TEST(SpscRingTest, CapacityOneDegenerateRing) {
  // One-slot ring: every operation sits on the full/empty boundary and
  // every push reuses the same slot.
  SpscRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
    ASSERT_TRUE(ring.full());
    ASSERT_FALSE(ring.TryPush(-1));
    ASSERT_EQ(ring.TryPop().value(), i);
    ASSERT_TRUE(ring.empty());
  }
}

TEST(SpscRingTest, PeekTracksHeadAcrossWraparound) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.TryPush(0));
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(ring.TryPush(i));  // keep one in flight, wrap constantly
    ASSERT_NE(ring.Peek(), nullptr);
    ASSERT_EQ(*ring.Peek(), i - 1);
    ASSERT_EQ(ring.TryPop().value(), i - 1);
  }
  ASSERT_EQ(ring.TryPop().value(), 100);
  EXPECT_EQ(ring.Peek(), nullptr);
}

TEST(SpscRingTest, ConcurrentProducerConsumerPreservesFifo) {
  SpscRing<int> ring(64);
  // Modest count with yields: the CI machine may have a single core, so
  // raw spin-waiting between two threads would crawl.
  constexpr int kItems = 20000;
  std::atomic<bool> failed{false};

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!ring.TryPush(i)) {
        std::this_thread::yield();
      }
    }
  });
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      std::optional<int> v;
      do {
        v = ring.TryPop();
        if (!v.has_value()) {
          std::this_thread::yield();
        }
      } while (!v.has_value());
      if (*v != i) {
        failed = true;
        return;
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(failed) << "FIFO order violated under concurrency";
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingTest, MillionOpThreadedStress) {
  // High-volume soak of the shared-memory dataplane ring: one real
  // producer thread, one real consumer thread, a million elements through
  // a small ring (constant wrap pressure). Run under -DSNAP_SANITIZE=thread
  // to prove the memory ordering, not just the happy path.
  SpscRing<uint64_t> ring(256);
  constexpr uint64_t kItems = 1'000'000;
  std::atomic<bool> failed{false};
  std::atomic<uint64_t> consumed_checksum{0};

  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!ring.TryPush(i)) {
        std::this_thread::yield();
      }
    }
  });
  std::thread consumer([&] {
    uint64_t checksum = 0;
    for (uint64_t i = 0; i < kItems; ++i) {
      std::optional<uint64_t> v;
      do {
        v = ring.TryPop();
        if (!v.has_value()) {
          std::this_thread::yield();
        }
      } while (!v.has_value());
      if (*v != i) {
        failed = true;
        return;
      }
      checksum += *v * 31 + 7;
    }
    consumed_checksum = checksum;
  });
  producer.join();
  consumer.join();
  ASSERT_FALSE(failed) << "FIFO order violated during 1M-op stress";
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kItems; ++i) {
    expected += i * 31 + 7;
  }
  EXPECT_EQ(consumed_checksum.load(), expected);
  EXPECT_TRUE(ring.empty());
}

// --- EngineMailbox --------------------------------------------------------

TEST(MailboxTest, PostAndRun) {
  EngineMailbox mailbox;
  int ran = 0;
  EXPECT_TRUE(mailbox.Post([&ran] { ++ran; }));
  EXPECT_TRUE(mailbox.pending());
  EXPECT_TRUE(mailbox.RunPending());
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(mailbox.pending());
  EXPECT_FALSE(mailbox.RunPending());
}

TEST(MailboxTest, DepthOneRejectsSecondPost) {
  EngineMailbox mailbox;
  EXPECT_TRUE(mailbox.Post([] {}));
  EXPECT_FALSE(mailbox.Post([] {}));  // occupied
  EXPECT_TRUE(mailbox.RunPending());
  EXPECT_TRUE(mailbox.Post([] {}));   // free again
}

TEST(MailboxTest, ConcurrentPostersSerializeThroughEngine) {
  EngineMailbox mailbox;
  constexpr int kPerThread = 500;
  constexpr int kThreads = 4;
  std::atomic<int> executed{0};
  std::atomic<bool> stop{false};

  std::thread engine([&] {
    while (!stop.load(std::memory_order_acquire)) {
      mailbox.RunPending();
    }
    while (mailbox.RunPending()) {
    }
  });
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        while (!mailbox.Post([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        })) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : posters) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  engine.join();
  EXPECT_EQ(executed.load(), kPerThread * kThreads);
}

TEST(MailboxTest, HighVolumePosterStress) {
  // ~200k messages from four posting threads against one running engine
  // thread; the mailbox is depth-one so posters constantly contend for the
  // slot. TSan-clean under -DSNAP_SANITIZE=thread.
  EngineMailbox mailbox;
  constexpr int kPerThread = 50000;
  constexpr int kThreads = 4;
  std::atomic<int64_t> executed{0};
  std::atomic<bool> stop{false};

  std::thread engine([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!mailbox.RunPending()) {
        std::this_thread::yield();
      }
    }
    while (mailbox.RunPending()) {
    }
  });
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        while (!mailbox.Post([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        })) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : posters) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  engine.join();
  EXPECT_EQ(executed.load(), int64_t{kPerThread} * kThreads);
}

// --- MpscQueue ------------------------------------------------------------

struct TestNode {
  MpscNode node;
  int value = 0;
};

TEST(MpscQueueTest, PushPopSingleThread) {
  MpscQueue queue;
  EXPECT_TRUE(queue.empty());
  TestNode a;
  a.value = 1;
  TestNode b;
  b.value = 2;
  queue.Push(&a.node);
  queue.Push(&b.node);
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.Pop(), &a.node);
  EXPECT_EQ(queue.Pop(), &b.node);
  EXPECT_EQ(queue.Pop(), nullptr);
}

TEST(MpscQueueTest, MultiProducerDeliversEverything) {
  MpscQueue queue;
  constexpr int kPerThread = 2000;
  constexpr int kThreads = 4;
  // Nodes contain atomics (non-movable): allocate in place.
  std::vector<std::vector<std::unique_ptr<TestNode>>> nodes(kThreads);
  for (auto& v : nodes) {
    for (int i = 0; i < kPerThread; ++i) {
      v.push_back(std::make_unique<TestNode>());
    }
  }
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&queue, &nodes, t] {
      for (int i = 0; i < kPerThread; ++i) {
        nodes[t][i]->value = t * kPerThread + i;
        queue.Push(&nodes[t][i]->node);
      }
    });
  }
  int popped = 0;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    while (popped < kPerThread * kThreads) {
      if (queue.Pop() != nullptr) {
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
    done = true;
  });
  for (auto& t : producers) {
    t.join();
  }
  consumer.join();
  EXPECT_TRUE(done);
  EXPECT_EQ(popped, kPerThread * kThreads);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace snap
