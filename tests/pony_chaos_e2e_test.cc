// End-to-end chaos sweep: a two-host Pony Express echo workload under
// bursty loss, bounded reordering, duplication, corruption, and all of it
// combined — across 32 seeds per profile, with every invariant checked and
// every (seed, profile) cell replayed to prove bit-identical determinism.
#include <gtest/gtest.h>

#include <iostream>
#include <map>
#include <sstream>

#include "src/testing/seed_sweep.h"

namespace snap {
namespace {

std::string Describe(const SweepRunResult& r) {
  std::ostringstream os;
  os << "profile=" << r.profile << " seed=" << r.seed;
  for (const Violation& v : r.violations) {
    os << "\n  [" << v.check << "] " << v.detail;
  }
  return os.str();
}

TEST(PonyChaosE2eTest, CleanBaselineDeliversWithoutRetransmits) {
  SeedSweepOptions opt;
  opt.check_replay = false;
  SeedSweepRunner runner(opt);
  SweepRunResult r = runner.RunOne(1, ChaosProfile{});
  EXPECT_TRUE(r.ok) << Describe(r);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.chaos_dropped, 0);
  EXPECT_EQ(r.chaos_corrupted, 0);
  EXPECT_EQ(r.crc_drops, 0);
  EXPECT_EQ(r.retransmits, 0);
}

TEST(PonyChaosE2eTest, SeedSweepAllProfilesAllInvariants) {
  SeedSweepOptions opt;  // 32 seeds x 5 default profiles, replay checked
  SeedSweepRunner runner(opt);
  std::vector<SweepRunResult> results = runner.RunAll();
  ASSERT_EQ(results.size(),
            static_cast<size_t>(opt.num_seeds) *
                SeedSweepRunner::DefaultProfiles().size());

  struct Agg {
    int64_t dropped = 0;
    int64_t duplicated = 0;
    int64_t corrupted = 0;
    int64_t reordered = 0;
    int64_t crc_drops = 0;
    int64_t retransmits = 0;
    int64_t spurious = 0;
    int64_t held = 0;
  };
  std::map<std::string, Agg> agg;
  for (const SweepRunResult& r : results) {
    // The big three, per run: no invariant violated, everything delivered
    // in time, and the same seed reproduced a bit-identical packet trace.
    EXPECT_TRUE(r.ok) << Describe(r);
    EXPECT_TRUE(r.completed) << Describe(r);
    EXPECT_TRUE(r.replay_identical) << Describe(r);
    // CRC drops can only come from injected corruption.
    EXPECT_LE(r.crc_drops, r.chaos_corrupted) << Describe(r);
    // Spurious retransmits are bounded by total retransmits.
    EXPECT_LE(r.spurious_retransmits, r.retransmits) << Describe(r);
    Agg& a = agg[r.profile];
    a.dropped += r.chaos_dropped;
    a.duplicated += r.chaos_duplicated;
    a.corrupted += r.chaos_corrupted;
    a.reordered += r.chaos_reordered;
    a.crc_drops += r.crc_drops;
    a.retransmits += r.retransmits;
    a.spurious += r.spurious_retransmits;
    a.held += r.messages_held_for_order;
  }

  // Each profile actually exercised its failure mode across the sweep.
  EXPECT_GT(agg["burst-loss-5"].dropped, 0);
  EXPECT_GT(agg["burst-loss-5"].retransmits, 0);
  EXPECT_GT(agg["reorder-k8"].reordered, 0);
  EXPECT_GT(agg["reorder-k8"].held, 0)
      << "reordering never forced the engine to hold a message for order";
  EXPECT_GT(agg["dup-2"].duplicated, 0);
  EXPECT_GT(agg["corrupt-1"].corrupted, 0);
  // The transport noticed the corruption (CRC drops) and recovered; the
  // checker already proved zero corrupted payloads reached an application
  // (corruption-accepted would have failed r.ok).
  EXPECT_GT(agg["corrupt-1"].crc_drops, 0);
  EXPECT_GT(agg["corrupt-1"].retransmits, 0);
  EXPECT_GT(agg["combined"].dropped, 0);
  EXPECT_GT(agg["combined"].corrupted, 0);

  std::cout << SeedSweepRunner::SummaryTable(results);
}

}  // namespace
}  // namespace snap
