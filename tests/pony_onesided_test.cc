// One-sided operation tests (Section 3.2): reads, writes, custom indirect
// reads and scan-and-read, access validation/security, and the property
// that no application thread runs on the target host.
#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/pony_apps.h"
#include "src/apps/simhost.h"

namespace snap {
namespace {

class OneSidedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<Simulator>(23);
    fabric_ = std::make_unique<Fabric>(sim_.get(), NicParams{});
    directory_ = std::make_unique<PonyDirectory>();
    SimHostOptions options;
    options.group.mode = SchedulingMode::kDedicatedCores;
    options.group.dedicated_cores = {0};
    a_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
    b_ = std::make_unique<SimHost>(sim_.get(), fabric_.get(),
                                   directory_.get(), options);
    ea_ = a_->CreatePonyEngine("ea");
    eb_ = b_->CreatePonyEngine("eb");
    ca_ = a_->CreateClient(ea_, "initiator");
    cb_ = b_->CreateClient(eb_, "target");
  }

  PonyCompletion WaitCompletion() {
    CpuCostSink cost;
    for (int i = 0; i < 1000; ++i) {
      sim_->RunFor(100 * kUsec);
      auto c = ca_->PollCompletion(&cost);
      if (c.has_value()) {
        return *c;
      }
    }
    ADD_FAILURE() << "no completion arrived";
    return PonyCompletion{};
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<PonyDirectory> directory_;
  std::unique_ptr<SimHost> a_;
  std::unique_ptr<SimHost> b_;
  PonyEngine* ea_ = nullptr;
  PonyEngine* eb_ = nullptr;
  std::unique_ptr<PonyClient> ca_;
  std::unique_ptr<PonyClient> cb_;
};

TEST_F(OneSidedTest, ReadReturnsRegionBytes) {
  uint64_t region = cb_->RegisterRegion(4096, false);
  MemoryRegion* mem = cb_->region(region);
  for (size_t i = 0; i < mem->data.size(); ++i) {
    mem->data[i] = static_cast<uint8_t>(i * 3);
  }
  CpuCostSink cost;
  uint64_t op = ca_->Read(eb_->address(), region, 128, 256, &cost);
  ASSERT_NE(op, 0u);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.op_id, op);
  EXPECT_EQ(c.status, PonyOpStatus::kOk);
  EXPECT_EQ(c.length, 256);
  ASSERT_EQ(c.data.size(), 256u);
  for (size_t i = 0; i < c.data.size(); ++i) {
    EXPECT_EQ(c.data[i], static_cast<uint8_t>((i + 128) * 3));
  }
}

TEST_F(OneSidedTest, ReadOutOfBoundsFails) {
  uint64_t region = cb_->RegisterRegion(1024, false);
  CpuCostSink cost;
  ca_->Read(eb_->address(), region, 1000, 256, &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kOutOfBounds);
  EXPECT_EQ(eb_->stats().op_errors, 1);
}

TEST_F(OneSidedTest, ReadUnknownRegionFails) {
  CpuCostSink cost;
  ca_->Read(eb_->address(), 0xDEAD, 0, 64, &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kNoSuchRegion);
}

TEST_F(OneSidedTest, WriteModifiesRemoteRegion) {
  uint64_t region = cb_->RegisterRegion(4096, /*allow_remote_write=*/true);
  std::vector<uint8_t> payload(100);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(200 - i);
  }
  CpuCostSink cost;
  ca_->Write(eb_->address(), region, 50, 0, payload, &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kOk);
  MemoryRegion* mem = cb_->region(region);
  for (size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(mem->data[50 + i], payload[i]);
  }
}

TEST_F(OneSidedTest, WriteToReadOnlyRegionDenied) {
  uint64_t region = cb_->RegisterRegion(4096, /*allow_remote_write=*/false);
  CpuCostSink cost;
  ca_->Write(eb_->address(), region, 0, 0, {1, 2, 3}, &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kPermissionDenied);
  // Region untouched.
  EXPECT_EQ(cb_->region(region)->data[0], 0);
}

TEST_F(OneSidedTest, IndirectReadFollowsApplicationFilledTable) {
  // Region layout: a table of u64 offsets at the front, data behind it.
  uint64_t region = cb_->RegisterRegion(64 * 1024, false);
  MemoryRegion* mem = cb_->region(region);
  // 16 table entries pointing at scattered 64-byte records.
  for (uint64_t i = 0; i < 16; ++i) {
    uint64_t target = 1024 + (15 - i) * 512;  // reversed order
    std::memcpy(mem->data.data() + i * 8, &target, 8);
    for (int b = 0; b < 64; ++b) {
      mem->data[target + b] = static_cast<uint8_t>(i);
    }
  }
  CpuCostSink cost;
  ca_->IndirectRead(eb_->address(), region, /*first_index=*/4, /*batch=*/8,
                    /*length=*/64, &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kOk);
  EXPECT_EQ(c.length, 8 * 64);
  ASSERT_EQ(c.data.size(), 8u * 64u);
  // Entry j of the response corresponds to table index 4+j.
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(c.data[j * 64], static_cast<uint8_t>(4 + j));
    EXPECT_EQ(c.data[j * 64 + 63], static_cast<uint8_t>(4 + j));
  }
  EXPECT_EQ(eb_->stats().indirections_executed, 8);
}

TEST_F(OneSidedTest, IndirectReadBadPointerFails) {
  uint64_t region = cb_->RegisterRegion(1024, false);
  MemoryRegion* mem = cb_->region(region);
  uint64_t bogus = 100000;  // beyond the region
  std::memcpy(mem->data.data(), &bogus, 8);
  CpuCostSink cost;
  ca_->IndirectRead(eb_->address(), region, 0, 1, 64, &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kOutOfBounds);
}

TEST_F(OneSidedTest, ScanAndReadMatchesKey) {
  // Region: (key, offset) pairs followed by data.
  uint64_t region = cb_->RegisterRegion(8192, false);
  MemoryRegion* mem = cb_->region(region);
  for (uint64_t i = 0; i < 8; ++i) {
    uint64_t key = 1000 + i;
    uint64_t offset = 4096 + i * 128;
    std::memcpy(mem->data.data() + i * 16, &key, 8);
    std::memcpy(mem->data.data() + i * 16 + 8, &offset, 8);
    for (int b = 0; b < 128; ++b) {
      mem->data[offset + b] = static_cast<uint8_t>(i + 100);
    }
  }
  CpuCostSink cost;
  ca_->ScanAndRead(eb_->address(), region, /*match=*/1005, /*length=*/128,
                   &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kOk);
  ASSERT_EQ(c.data.size(), 128u);
  EXPECT_EQ(c.data[0], static_cast<uint8_t>(105));
}

TEST_F(OneSidedTest, ScanAndReadNoMatchFails) {
  uint64_t region = cb_->RegisterRegion(256, false);
  CpuCostSink cost;
  ca_->ScanAndRead(eb_->address(), region, 424242, 64, &cost);
  PonyCompletion c = WaitCompletion();
  EXPECT_EQ(c.status, PonyOpStatus::kNoMatch);
}

TEST_F(OneSidedTest, NoTargetApplicationThreadInvolved) {
  // The target host runs NO application task at all; one-sided ops still
  // execute entirely within the engine (Section 3.2).
  uint64_t region = cb_->RegisterRegion(4096, false);
  CpuCostSink cost;
  for (int i = 0; i < 20; ++i) {
    ca_->Read(eb_->address(), region, 0, 64, &cost);
  }
  sim_->RunFor(50 * kMsec);
  int completions = 0;
  while (ca_->PollCompletion(&cost).has_value()) {
    ++completions;
  }
  EXPECT_EQ(completions, 20);
  EXPECT_EQ(eb_->stats().ops_executed, 20);
  EXPECT_EQ(b_->AppCpuNs(), 0);  // no app CPU on the target
}

TEST_F(OneSidedTest, BatchedIndirectReadIsCheaperPerAccess) {
  // The headline Figure 8 effect: batch=8 roughly doubles achievable op
  // rate vs plain reads by amortizing per-packet costs.
  uint64_t region = cb_->RegisterRegion(64 * 1024, false);
  MemoryRegion* mem = cb_->region(region);
  for (uint64_t i = 0; i < 1024; ++i) {
    uint64_t target = 8192 + (i % 64) * 64;
    std::memcpy(mem->data.data() + i * 8, &target, 8);
  }
  auto measure = [&](OneSidedLoadTask::Mode mode, uint16_t batch) {
    OneSidedLoadTask::Options options;
    options.peer = eb_->address();
    options.mode = mode;
    options.region_id = region;
    options.batch = batch;
    options.read_bytes = 64;
    options.table_entries = 64;
    options.max_outstanding = 32;
    OneSidedLoadTask task("load", a_->cpu(), ca_.get(), options);
    task.Start();
    sim_->RunFor(20 * kMsec);
    int64_t start = task.accesses_completed();
    sim_->RunFor(100 * kMsec);
    double rate = static_cast<double>(task.accesses_completed() - start) /
                  ToSec(100 * kMsec);
    return rate;
  };
  double batched = measure(OneSidedLoadTask::Mode::kIndirectRead, 8);
  // A separate sim would be cleaner, but sequential runs on the same pair
  // are fine: measure plain reads after.
  double plain = measure(OneSidedLoadTask::Mode::kRead, 1);
  EXPECT_GT(batched, 2.0 * plain);
  EXPECT_GT(batched, 2e6);  // millions of accesses/sec (Figure 8 scale)
}

}  // namespace
}  // namespace snap
