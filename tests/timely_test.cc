// Timely congestion-control unit tests: the four regimes (below Tlow,
// above Thigh, negative/positive gradient), HAI mode, clamping, update
// pacing, and RTO backoff.
#include <gtest/gtest.h>

#include <cmath>

#include "src/pony/timely.h"

namespace snap {
namespace {

TimelyParams FastUpdateParams() {
  TimelyParams p;
  p.update_interval = 0;  // let unit tests feed every sample
  return p;
}

TEST(TimelyTest, StartsAtLineRate) {
  TimelyParams p;
  TimelyController timely(p);
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), p.max_rate_bytes_per_sec);
}

TEST(TimelyTest, FirstSampleOnlyPrimes) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  double before = timely.rate_bytes_per_sec();
  timely.OnRttSample(100 * kUsec, 0);
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), before);
}

TEST(TimelyTest, BelowTlowAlwaysIncreases) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  timely.RestoreRate(1e9);
  timely.OnRttSample(10 * kUsec, 0);
  double prev = timely.rate_bytes_per_sec();
  for (int i = 1; i <= 10; ++i) {
    // Even a *growing* RTT increases the rate while it stays below Tlow.
    timely.OnRttSample(10 * kUsec + i * 400, i * 1000);
    EXPECT_GT(timely.rate_bytes_per_sec(), prev);
    prev = timely.rate_bytes_per_sec();
  }
  EXPECT_NEAR(prev, 1e9 + 10 * p.additive_increment, 1);
}

TEST(TimelyTest, AboveThighDecreasesProportionallyToOvershoot) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  timely.RestoreRate(10e9);
  timely.OnRttSample(p.t_high + 1 * kUsec, 0);
  timely.OnRttSample(2 * p.t_high, 1000);
  double after_mild = 10e9;
  // rate *= 1 - beta*(1 - Thigh/rtt) with rtt = 2*Thigh -> *= 1 - beta/2.
  EXPECT_NEAR(timely.rate_bytes_per_sec(),
              after_mild * (1 - p.beta * 0.5), after_mild * 0.01);
}

TEST(TimelyTest, NegativeGradientIncreases) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  timely.RestoreRate(1e9);
  // RTTs in band and falling: gradient negative -> increase.
  SimDuration rtt = 120 * kUsec;
  timely.OnRttSample(rtt, 0);
  double prev = timely.rate_bytes_per_sec();
  for (int i = 1; i <= 4; ++i) {
    rtt -= 10 * kUsec;
    timely.OnRttSample(rtt, i * 1000);
    EXPECT_GT(timely.rate_bytes_per_sec(), prev);
    prev = timely.rate_bytes_per_sec();
  }
}

TEST(TimelyTest, HaiModeAcceleratesAfterStreak) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  timely.RestoreRate(1e9);
  SimDuration rtt = 200 * kUsec;
  timely.OnRttSample(rtt, 0);
  std::vector<double> deltas;
  double prev = timely.rate_bytes_per_sec();
  for (int i = 1; i <= 8; ++i) {
    rtt -= 8 * kUsec;
    timely.OnRttSample(rtt, i * 1000);
    deltas.push_back(timely.rate_bytes_per_sec() - prev);
    prev = timely.rate_bytes_per_sec();
  }
  // After hai_threshold consecutive increases, steps grow 5x.
  EXPECT_NEAR(deltas.back(), 5 * p.additive_increment, 1);
  EXPECT_NEAR(deltas.front(), p.additive_increment, 1);
}

TEST(TimelyTest, PositiveGradientDecreases) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  timely.RestoreRate(8e9);
  SimDuration rtt = 100 * kUsec;
  timely.OnRttSample(rtt, 0);
  for (int i = 1; i <= 5; ++i) {
    rtt += 20 * kUsec;  // strongly rising RTT in band... until Thigh
    if (rtt > p.t_high) {
      break;
    }
    timely.OnRttSample(rtt, i * 1000);
  }
  EXPECT_LT(timely.rate_bytes_per_sec(), 8e9);
}

TEST(TimelyTest, RateClampedToBounds) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  // Push far above max.
  timely.OnRttSample(5 * kUsec, 0);
  for (int i = 1; i < 500; ++i) {
    timely.OnRttSample(5 * kUsec, i * 1000);
  }
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), p.max_rate_bytes_per_sec);
  // Crash far below min.
  for (int i = 0; i < 200; ++i) {
    timely.OnRttSample(5 * kMsec, 1000000 + i * 1000);
  }
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), p.min_rate_bytes_per_sec);
}

TEST(TimelyTest, UpdatesAreRateLimited) {
  TimelyParams p;  // default 25us update interval
  TimelyController timely(p);
  timely.RestoreRate(1e9);
  timely.OnRttSample(10 * kUsec, 0);
  timely.OnRttSample(10 * kUsec, 1000);
  double after_first = timely.rate_bytes_per_sec();
  // Samples within the update interval are ignored.
  for (int i = 0; i < 10; ++i) {
    timely.OnRttSample(10 * kUsec, 2000 + i * 1000);
  }
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), after_first);
  // After the interval, updates resume.
  timely.OnRttSample(10 * kUsec, 1000 + p.update_interval);
  EXPECT_GT(timely.rate_bytes_per_sec(), after_first);
}

TEST(TimelyTest, RtoHalvesRate) {
  TimelyParams p;
  TimelyController timely(p);
  timely.RestoreRate(4e9);
  timely.OnRetransmitTimeout();
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), 2e9);
  // Never below the floor.
  timely.RestoreRate(p.min_rate_bytes_per_sec);
  timely.OnRetransmitTimeout();
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), p.min_rate_bytes_per_sec);
}

TEST(TimelyTest, IgnoresNonPositiveRtt) {
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  timely.RestoreRate(1e9);
  timely.OnRttSample(0, 0);
  timely.OnRttSample(-5, 1000);
  EXPECT_DOUBLE_EQ(timely.rate_bytes_per_sec(), 1e9);
}

// Property sweep: from any starting rate and any steady RTT, the
// controller converges into a sane regime (no NaN, stays in bounds).
class TimelySweepTest
    : public ::testing::TestWithParam<std::tuple<double, SimDuration>> {};

TEST_P(TimelySweepTest, StaysBoundedAndFinite) {
  auto [start_rate, rtt] = GetParam();
  TimelyParams p = FastUpdateParams();
  TimelyController timely(p);
  timely.RestoreRate(start_rate);
  for (int i = 0; i < 1000; ++i) {
    // Small deterministic jitter.
    SimDuration sample = rtt + (i % 7) * kUsec - 3 * kUsec;
    timely.OnRttSample(sample, i * 1000);
    double rate = timely.rate_bytes_per_sec();
    ASSERT_TRUE(std::isfinite(rate));
    ASSERT_GE(rate, p.min_rate_bytes_per_sec);
    ASSERT_LE(rate, p.max_rate_bytes_per_sec);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndRtts, TimelySweepTest,
    ::testing::Combine(::testing::Values(1e7, 1e9, 12.5e9),
                       ::testing::Values(5 * kUsec, 30 * kUsec,
                                         100 * kUsec, 1 * kMsec)));

}  // namespace
}  // namespace snap
