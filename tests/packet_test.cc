// Packet-layer tests: CRC32C vectors, wire encode/decode across versions,
// version negotiation, and the packet pool.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/packet/crc32.h"
#include "src/packet/packet_pool.h"
#include "src/packet/wire.h"
#include "src/stats/telemetry.h"

namespace snap {
namespace {

// --- CRC32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors for CRC32C.
  uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  uint8_t ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);
  const char* numbers = "123456789";
  EXPECT_EQ(Crc32c(numbers, 9), 0xE3069283u);
}

TEST(Crc32cTest, ChainingEqualsOneShot) {
  const char* data = "snap microkernel host networking";
  size_t len = std::strlen(data);
  uint32_t one_shot = Crc32c(data, len);
  uint32_t first = Crc32c(data, 10);
  uint32_t chained = Crc32c(data + 10, len - 10, first);
  EXPECT_EQ(one_shot, chained);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  uint8_t buf[64];
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<uint8_t>(i);
  }
  uint32_t clean = Crc32c(buf, sizeof(buf));
  for (int bit = 0; bit < 64 * 8; bit += 37) {
    buf[bit / 8] ^= static_cast<uint8_t>(1 << (bit % 8));
    EXPECT_NE(Crc32c(buf, sizeof(buf)), clean) << "missed bit " << bit;
    buf[bit / 8] ^= static_cast<uint8_t>(1 << (bit % 8));
  }
}

// --- Wire format ------------------------------------------------------------

PonyHeader MakeHeader(uint16_t version) {
  PonyHeader h;
  h.version = version;
  h.flow_id = 0xAABBCCDD00112233ull;
  h.seq = 777;
  h.ack = 776;
  h.type = PonyPacketType::kOpRequest;
  h.op = PonyOpCode::kIndirectRead;
  h.op_id = 0x1234567890ull;
  h.stream_id = 42;
  h.msg_offset = 4096;
  h.msg_length = 65536;
  h.region_id = 0xFEDCBA98ull;
  h.region_offset = 512;
  h.op_length = 64;
  h.batch = 8;
  h.credit = 32768;
  h.status = 0;
  h.tx_timestamp = 123456789;
  h.ts_echo = 987654321;
  return h;
}

TEST(WireTest, V2RoundTripPreservesAllFields) {
  PonyHeader h = MakeHeader(2);
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodePonyHeader(h, &encoded).ok());
  EXPECT_EQ(static_cast<int>(encoded.size()), PonyHeaderWireSize(2));
  auto decoded = DecodePonyHeader(encoded.data(), encoded.size());
  ASSERT_TRUE(decoded.ok());
  const PonyHeader& d = *decoded;
  EXPECT_EQ(d.version, 2);
  EXPECT_EQ(d.flow_id, h.flow_id);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.ack, h.ack);
  EXPECT_EQ(d.type, h.type);
  EXPECT_EQ(d.op, h.op);
  EXPECT_EQ(d.op_id, h.op_id);
  EXPECT_EQ(d.stream_id, h.stream_id);
  EXPECT_EQ(d.msg_offset, h.msg_offset);
  EXPECT_EQ(d.msg_length, h.msg_length);
  EXPECT_EQ(d.region_id, h.region_id);
  EXPECT_EQ(d.region_offset, h.region_offset);
  EXPECT_EQ(d.op_length, h.op_length);
  EXPECT_EQ(d.batch, h.batch);
  EXPECT_EQ(d.credit, h.credit);
  EXPECT_EQ(d.tx_timestamp, h.tx_timestamp);
  EXPECT_EQ(d.ts_echo, h.ts_echo);
}

TEST(WireTest, V1DropsV2OnlyFields) {
  PonyHeader h = MakeHeader(1);
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodePonyHeader(h, &encoded).ok());
  EXPECT_EQ(static_cast<int>(encoded.size()), PonyHeaderWireSize(1));
  EXPECT_LT(PonyHeaderWireSize(1), PonyHeaderWireSize(2));
  auto decoded = DecodePonyHeader(encoded.data(), encoded.size());
  ASSERT_TRUE(decoded.ok());
  // v2-only fields come back as defaults (the transport falls back to
  // software timestamps and unbatched indirections).
  EXPECT_EQ(decoded->tx_timestamp, 0);
  EXPECT_EQ(decoded->ts_echo, 0);
  EXPECT_EQ(decoded->batch, 0);
  EXPECT_EQ(decoded->seq, h.seq);
}

TEST(WireTest, RejectsUnsupportedVersions) {
  PonyHeader h = MakeHeader(1);
  h.version = 0;
  std::vector<uint8_t> encoded;
  EXPECT_FALSE(EncodePonyHeader(h, &encoded).ok());
  h.version = 99;
  EXPECT_FALSE(EncodePonyHeader(h, &encoded).ok());

  uint16_t bogus = 57;
  uint8_t buf[128] = {};
  std::memcpy(buf, &bogus, 2);
  EXPECT_FALSE(DecodePonyHeader(buf, sizeof(buf)).ok());
}

TEST(WireTest, RejectsTruncatedBuffers) {
  PonyHeader h = MakeHeader(2);
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodePonyHeader(h, &encoded).ok());
  for (size_t len = 0; len < encoded.size(); len += 7) {
    EXPECT_FALSE(DecodePonyHeader(encoded.data(), len).ok())
        << "accepted truncation at " << len;
  }
}

TEST(WireTest, CrcCoversHeaderAndPayload) {
  PonyHeader h = MakeHeader(2);
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  uint32_t crc = PonyPacketCrc(h, payload);
  // CRC field itself is excluded from coverage.
  h.crc32 = crc;
  EXPECT_EQ(PonyPacketCrc(h, payload), crc);
  // Any header mutation changes the CRC.
  PonyHeader h2 = h;
  h2.seq += 1;
  EXPECT_NE(PonyPacketCrc(h2, payload), crc);
  // Any payload mutation changes the CRC.
  payload[3] ^= 0x80;
  EXPECT_NE(PonyPacketCrc(h, payload), crc);
}

TEST(WireTest, NegotiationPicksHighestCommon) {
  auto v = NegotiateWireVersion(1, 2, 1, 2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2);
  v = NegotiateWireVersion(1, 2, 1, 1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1);  // least common denominator
  v = NegotiateWireVersion(2, 2, 1, 1);
  EXPECT_FALSE(v.ok());  // disjoint
}

// --- PacketPool -------------------------------------------------------------

TEST(PacketPoolTest, AllocateAndFree) {
  PacketPool pool(4, "test");
  PacketPtr p = pool.Allocate();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(pool.stats().allocated, 1);
  pool.Free(std::move(p));
  EXPECT_EQ(pool.stats().allocated, 0);
  EXPECT_EQ(pool.stats().total_allocs, 1);
}

TEST(PacketPoolTest, ExhaustionFailsCleanly) {
  PacketPool pool(2);
  PacketPtr a = pool.Allocate();
  PacketPtr b = pool.Allocate();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.Allocate(), nullptr);
  EXPECT_EQ(pool.stats().failed_allocs, 1);
  pool.Free(std::move(a));
  EXPECT_NE(pool.Allocate(), nullptr);
}

TEST(PacketPoolTest, RecycledPacketsAreClean) {
  PacketPool pool(2);
  PacketPtr p = pool.Allocate();
  p->pony.seq = 999;
  p->data = {1, 2, 3};
  p->payload_bytes = 3;
  pool.Free(std::move(p));
  PacketPtr q = pool.Allocate();
  EXPECT_EQ(q->pony.seq, 0u);
  EXPECT_TRUE(q->data.empty());
  EXPECT_EQ(q->payload_bytes, 0);
}

TEST(PacketPoolTest, PeakTracksHighWaterMark) {
  PacketPool pool(10);
  std::vector<PacketPtr> held;
  for (int i = 0; i < 7; ++i) {
    held.push_back(pool.Allocate());
  }
  for (auto& p : held) {
    pool.Free(std::move(p));
  }
  EXPECT_EQ(pool.stats().peak_allocated, 7);
  EXPECT_EQ(pool.stats().allocated, 0);
}

TEST(PacketPoolTest, RecyclingPreservesPayloadCapacity) {
  // Regression for `*p = Packet{}` discarding the recycled data buffer:
  // a recycled packet must come back with its old capacity intact so the
  // payload write does not reallocate.
  PacketPool pool(4);
  PacketPtr p = pool.Allocate(5000);
  p->data.assign(5000, 0xAB);
  const uint8_t* buffer = p->data.data();
  pool.Free(std::move(p));

  PacketPtr q = pool.Allocate(5000);
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->data.empty());          // clean...
  EXPECT_GE(q->data.capacity(), 5000u);  // ...but capacity retained
  q->data.assign(5000, 0xCD);
  EXPECT_EQ(q->data.data(), buffer);  // same heap buffer, no realloc
  EXPECT_EQ(pool.stats().recycled, 1);
  EXPECT_EQ(pool.stats().recycled_with_capacity, 1);
}

TEST(PacketPoolTest, SizeClassesKeepBigAndSmallBuffersApart) {
  // A stream of ack-sized allocations must not burn through the recycled
  // 5kB MTU buffers (and vice versa): each class prefers its own list.
  PacketPool pool(16);
  PacketPtr big = pool.Allocate(5000);
  big->data.resize(5000);
  PacketPtr small = pool.Allocate(64);
  small->data.resize(64);
  pool.Free(std::move(big));
  pool.Free(std::move(small));

  PacketPtr ack = pool.Allocate(64);
  EXPECT_LT(ack->data.capacity(), 5000u);  // got the small buffer
  PacketPtr mtu = pool.Allocate(5000);
  EXPECT_GE(mtu->data.capacity(), 5000u);  // big buffer still available
  EXPECT_EQ(pool.stats().recycled_with_capacity, 2);
}

TEST(PacketPoolTest, FallbackCrossesClassesRatherThanAllocatingFresh) {
  PacketPool pool(4);
  PacketPtr p = pool.Allocate(64);
  p->data.resize(64);
  pool.Free(std::move(p));
  // Only a small buffer is pooled; a big request still recycles it (the
  // buffer grows) instead of minting a new Packet.
  PacketPtr q = pool.Allocate(5000);
  EXPECT_EQ(pool.stats().recycled, 1);
  EXPECT_EQ(pool.stats().fresh_allocs, 1);  // just the first Allocate
  EXPECT_EQ(pool.stats().recycled_with_capacity, 0);
  EXPECT_GE(q->data.capacity(), 5000u);  // hint pre-reserved
}

TEST(PacketPoolTest, AdoptOwnerThreadTransfersOwnershipAcrossThreads) {
  // Regression for the live-mode handoff: a pool built and warmed on the
  // setup thread is claimed by the engine thread with AdoptOwnerThread.
  // Without the adopt, the worker's first Allocate would trip the
  // single-owner assert in debug builds.
  PacketPool pool(4, "handoff");
  PacketPtr warm = pool.Allocate(5000);
  warm->data.resize(5000);
  pool.Free(std::move(warm));  // main thread is the owner now

  std::thread worker([&pool] {
    pool.AdoptOwnerThread();
    PacketPtr p = pool.Allocate(5000);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(p->data.capacity(), 5000u);  // got the warmed buffer
    pool.Free(std::move(p));
  });
  worker.join();

  // The transfer is explicit each way: the main thread re-adopts before
  // touching the pool again.
  pool.AdoptOwnerThread();
  PacketPtr p = pool.Allocate();
  EXPECT_NE(p, nullptr);
  pool.Free(std::move(p));
  EXPECT_EQ(pool.stats().allocated, 0);
}

TEST(PacketPoolTest, ClassForSizeBoundaries) {
  EXPECT_EQ(PacketPool::ClassForSize(0), 0);
  EXPECT_EQ(PacketPool::ClassForSize(1), 1);
  EXPECT_EQ(PacketPool::ClassForSize(128), 1);
  EXPECT_EQ(PacketPool::ClassForSize(129), 2);
  EXPECT_EQ(PacketPool::ClassForSize(2048), 2);
  EXPECT_EQ(PacketPool::ClassForSize(2049), 3);
  EXPECT_EQ(PacketPool::ClassForSize(5000), 3);
}

TEST(PacketPoolTest, ExportStatsPublishesCounters) {
  Telemetry telemetry;
  PacketPool pool(4, "engine0");
  PacketPtr p = pool.Allocate(100);
  p->data.resize(100);
  pool.Free(std::move(p));
  pool.Allocate(100);
  pool.ExportStats(&telemetry, "snap/engine0/pool");
  auto snap = telemetry.SnapshotValues();
  EXPECT_EQ(snap["snap/engine0/pool/total_allocs"], 2);
  EXPECT_EQ(snap["snap/engine0/pool/recycled"], 1);
  EXPECT_EQ(snap["snap/engine0/pool/recycled_with_capacity"], 1);
  EXPECT_EQ(snap["snap/engine0/pool/allocated"], 1);
  // Re-export publishes absolute values, not deltas.
  pool.ExportStats(&telemetry, "snap/engine0/pool");
  snap = telemetry.SnapshotValues();
  EXPECT_EQ(snap["snap/engine0/pool/total_allocs"], 2);
}

}  // namespace
}  // namespace snap
